// Package assoc derives association rules from frequent-itemset output.
// It exists because the paper motivates ratio preservation with exactly
// this consumer: rule confidence is the RATIO of two published supports
// (conf(A⇒B) = T(A∪B)/T(A)), so a perturbation that preserves support
// ratios (§VI-B) keeps downstream rule mining honest even though every
// individual support is noisy.
//
// Rules can be derived from raw mining results or from sanitized Butterfly
// output — the package only needs a support lookup — which is how the tests
// quantify the confidence error each scheme induces.
package assoc

import (
	"fmt"
	"sort"

	"repro/internal/itemset"
)

// Rule is one association rule Antecedent ⇒ Consequent with its measures.
type Rule struct {
	Antecedent itemset.Itemset
	Consequent itemset.Itemset
	// Support is the (possibly sanitized) support of Antecedent ∪ Consequent.
	Support int
	// Confidence is Support / T(Antecedent).
	Confidence float64
	// Lift is Confidence / (T(Consequent)/N): how much more often the
	// consequent appears with the antecedent than baseline.
	Lift float64
}

// String renders the rule as "{a} => {b} (sup=s conf=c lift=l)".
func (r Rule) String() string {
	return fmt.Sprintf("%v => %v (sup=%d conf=%.3f lift=%.2f)",
		r.Antecedent, r.Consequent, r.Support, r.Confidence, r.Lift)
}

// SupportSource resolves itemset supports; both *mining.Result and
// *core.Output satisfy it.
type SupportSource interface {
	Support(s itemset.Itemset) (int, bool)
}

// Config bounds rule generation.
type Config struct {
	// MinConfidence filters rules below this confidence (default 0.5).
	MinConfidence float64
	// Transactions is N, the window size, used for lift (0 disables lift,
	// reported as 0).
	Transactions int
}

// Rules derives all association rules A ⇒ B with A, B non-empty and
// disjoint, A ∪ B ranging over the given itemsets, keeping rules whose
// confidence meets cfg.MinConfidence. Antecedent supports must be available
// from src (they are, for frequent-itemset output: subsets of frequent
// itemsets are frequent). Output order is deterministic: descending
// confidence, then descending support, then lexicographic.
func Rules(sets []itemset.Itemset, src SupportSource, cfg Config) []Rule {
	if cfg.MinConfidence == 0 {
		cfg.MinConfidence = 0.5
	}
	var out []Rule
	for _, whole := range sets {
		if whole.Len() < 2 {
			continue
		}
		wholeSup, ok := src.Support(whole)
		if !ok {
			continue
		}
		whole.ProperSubsets(func(ante itemset.Itemset) bool {
			anteSup, ok := src.Support(ante)
			if !ok || anteSup <= 0 {
				return true
			}
			conf := float64(wholeSup) / float64(anteSup)
			if conf < cfg.MinConfidence {
				return true
			}
			cons := whole.Minus(ante)
			lift := 0.0
			if cfg.Transactions > 0 {
				if consSup, ok := src.Support(cons); ok && consSup > 0 {
					lift = conf / (float64(consSup) / float64(cfg.Transactions))
				}
			}
			out = append(out, Rule{
				Antecedent: ante,
				Consequent: cons,
				Support:    wholeSup,
				Confidence: conf,
				Lift:       lift,
			})
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Confidence != b.Confidence {
			return a.Confidence > b.Confidence
		}
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		ak := a.Antecedent.Key() + "|" + a.Consequent.Key()
		bk := b.Antecedent.Key() + "|" + b.Consequent.Key()
		return ak < bk
	})
	return out
}

// ConfidenceError compares the rules derived from sanitized output against
// ground truth: for every rule derivable from the TRUE supports (at the
// given confidence threshold), it computes |conf_sanitized − conf_true| and
// returns the mean absolute error plus the number of rules compared. Rules
// whose sanitized antecedent support is missing or non-positive contribute
// the full true confidence as error (the rule is unusable).
func ConfidenceError(sets []itemset.Itemset, truth, sanitized SupportSource, cfg Config) (mae float64, rules int) {
	trueRules := Rules(sets, truth, cfg)
	var sum float64
	for _, r := range trueRules {
		whole := r.Antecedent.Union(r.Consequent)
		wholeSan, ok1 := sanitized.Support(whole)
		anteSan, ok2 := sanitized.Support(r.Antecedent)
		if !ok1 || !ok2 || anteSan <= 0 {
			sum += r.Confidence
		} else {
			sanConf := float64(wholeSan) / float64(anteSan)
			d := sanConf - r.Confidence
			if d < 0 {
				d = -d
			}
			sum += d
		}
		rules++
	}
	if rules == 0 {
		return 0, 0
	}
	return sum / float64(rules), rules
}
