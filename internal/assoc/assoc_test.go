package assoc

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/rng"
)

// fixture: 10 x {a,b}, 4 x {a}, 6 x {b,c} -> T(a)=14, T(b)=16, T(ab)=10,
// T(c)=6, T(bc)=6, N=20.
func fixtureResult(t *testing.T) (*mining.Result, *itemset.Database) {
	t.Helper()
	var recs []itemset.Itemset
	for i := 0; i < 10; i++ {
		recs = append(recs, itemset.New(0, 1))
	}
	for i := 0; i < 4; i++ {
		recs = append(recs, itemset.New(0))
	}
	for i := 0; i < 6; i++ {
		recs = append(recs, itemset.New(1, 2))
	}
	db := itemset.NewDatabase(recs)
	res, err := mining.Apriori(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	return res, db
}

func setsOf(res *mining.Result) []itemset.Itemset {
	out := make([]itemset.Itemset, res.Len())
	for i, fi := range res.Itemsets {
		out[i] = fi.Set
	}
	return out
}

func TestRulesFromTrueSupports(t *testing.T) {
	res, db := fixtureResult(t)
	rules := Rules(setsOf(res), res, Config{MinConfidence: 0.5, Transactions: db.Len()})
	// Expected rules with conf >= 0.5:
	//   a=>b: 10/14 ≈ 0.714; b=>a: 10/16 = 0.625; c=>b: 6/6 = 1.0
	//   b=>c: 6/16 = 0.375 (filtered)
	byName := map[string]Rule{}
	for _, r := range rules {
		byName[r.Antecedent.String()+"=>"+r.Consequent.String()] = r
	}
	ab, ok := byName["{a}=>{b}"]
	if !ok {
		t.Fatalf("a=>b missing; got %v", rules)
	}
	if math.Abs(ab.Confidence-10.0/14) > 1e-12 {
		t.Errorf("conf(a=>b) = %v", ab.Confidence)
	}
	// lift(a=>b) = conf / (T(b)/N) = (10/14)/(16/20).
	wantLift := (10.0 / 14) / (16.0 / 20)
	if math.Abs(ab.Lift-wantLift) > 1e-12 {
		t.Errorf("lift(a=>b) = %v, want %v", ab.Lift, wantLift)
	}
	if _, ok := byName["{b}=>{c}"]; ok {
		t.Error("b=>c should be filtered at conf 0.5")
	}
	cb, ok := byName["{c}=>{b}"]
	if !ok || cb.Confidence != 1 {
		t.Errorf("c=>b = %+v, %v", cb, ok)
	}
	// Sorted by descending confidence: c=>b first.
	if !rules[0].Antecedent.Equal(itemset.New(2)) {
		t.Errorf("first rule = %v", rules[0])
	}
}

func TestRulesLiftDisabledWithoutN(t *testing.T) {
	res, _ := fixtureResult(t)
	rules := Rules(setsOf(res), res, Config{MinConfidence: 0.5})
	for _, r := range rules {
		if r.Lift != 0 {
			t.Errorf("lift = %v without transaction count", r.Lift)
		}
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{
		Antecedent: itemset.New(0),
		Consequent: itemset.New(1),
		Support:    5, Confidence: 0.75, Lift: 1.5,
	}
	if got := r.String(); !strings.Contains(got, "=>") || !strings.Contains(got, "0.750") {
		t.Errorf("String = %q", got)
	}
}

func TestConfidenceErrorZeroOnTruth(t *testing.T) {
	res, db := fixtureResult(t)
	mae, n := ConfidenceError(setsOf(res), res, res, Config{MinConfidence: 0.5, Transactions: db.Len()})
	if mae != 0 {
		t.Errorf("self-comparison MAE = %v", mae)
	}
	if n == 0 {
		t.Error("no rules compared")
	}
}

func TestConfidenceErrorEmptyInput(t *testing.T) {
	res := mining.NewResult(2, nil)
	mae, n := ConfidenceError(nil, res, res, Config{})
	if mae != 0 || n != 0 {
		t.Errorf("empty input: mae=%v n=%d", mae, n)
	}
}

// The paper's §VI-B motivation, demonstrated: over a realistic stream, the
// ratio-preserving scheme yields lower rule-confidence error than the
// order-preserving scheme.
func TestRatioPreservingBeatsOrderOnConfidence(t *testing.T) {
	gen := data.POSLike(17)
	db := itemset.NewDatabase(gen.Generate(1500))
	res, err := mining.Eclat(db, 20)
	if err != nil {
		t.Fatal(err)
	}
	params := core.Params{Epsilon: 0.15, Delta: 0.4, MinSupport: 20, VulnSupport: 5}
	cfg := Config{MinConfidence: 0.3, Transactions: db.Len()}

	avgMAE := func(scheme core.Scheme) float64 {
		var total float64
		const runs = 12
		for r := 0; r < runs; r++ {
			pub, err := core.NewPublisher(params, scheme, rng.New(uint64(100+r)))
			if err != nil {
				t.Fatal(err)
			}
			out, err := pub.Publish(res, db.Len())
			if err != nil {
				t.Fatal(err)
			}
			mae, n := ConfidenceError(setsOf(res), res, out, cfg)
			if n == 0 {
				t.Fatal("no rules to compare")
			}
			total += mae
		}
		return total / runs
	}

	rp := avgMAE(core.RatioPreserving{})
	op := avgMAE(core.OrderPreserving{Gamma: 2})
	if rp >= op {
		t.Errorf("ratio-preserving confidence MAE %v not better than order-preserving %v", rp, op)
	}
}
