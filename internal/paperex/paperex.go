// Package paperex reconstructs the running example of the Butterfly paper
// (Fig. 2 / Fig. 3 and Examples 2–5) for use in tests, examples and
// documentation.
//
// The published figure is an illustration, not machine-readable data, so the
// records here are a reconstruction chosen to satisfy every quantitative
// statement the paper makes about the example:
//
//   - window Ds(11,8): T(c)=8, T(ac)=6, T(bc)=6, T(abc)=4   (Fig. 3 left)
//   - window Ds(12,8): T(c)=8, T(ac)=5, T(bc)=5, T(abc)=3   (Fig. 3 right)
//   - inclusion–exclusion over the lattice X_c^abc in Ds(12,8) derives the
//     pattern c·¬a·¬b with support 1                        (Example 3)
//   - given c, ac, bc only, the bounds on T(abc) in Ds(12,8) are [2,5]
//     (Example 4)
//   - the support of abc drops by exactly 1 between the two windows, which
//     is what the inter-window inference of Example 5 exploits.
package paperex

import "repro/internal/itemset"

// Item aliases for the paper's a–d item names.
const (
	A itemset.Item = 0
	B itemset.Item = 1
	C itemset.Item = 2
	D itemset.Item = 3
)

// WindowSize is the H = 8 sliding window of the running example.
const WindowSize = 8

// Records returns the 12-record stream. Records r4..r12 are pinned by the
// constraints above; r1..r3 only serve to make the stream 12 records long.
func Records() []itemset.Itemset {
	return []itemset.Itemset{
		itemset.New(A, B),       // r1
		itemset.New(C, D),       // r2
		itemset.New(A, D),       // r3
		itemset.New(A, B, C, D), // r4  (leaves between Ds(11,8) and Ds(12,8))
		itemset.New(A, B, C),    // r5
		itemset.New(A, B, C),    // r6
		itemset.New(A, B, C),    // r7
		itemset.New(A, C),       // r8
		itemset.New(A, C, D),    // r9
		itemset.New(B, C),       // r10
		itemset.New(B, C, D),    // r11
		itemset.New(C, D),       // r12 (enters at Ds(12,8))
	}
}

// Window11 returns the database of Ds(11,8) = records r4..r11.
func Window11() *itemset.Database {
	return itemset.NewDatabase(Records()[3:11])
}

// Window12 returns the database of Ds(12,8) = records r5..r12.
func Window12() *itemset.Database {
	return itemset.NewDatabase(Records()[4:12])
}
