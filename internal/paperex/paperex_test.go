package paperex

import (
	"testing"

	"repro/internal/itemset"
)

// Verify that the reconstruction satisfies every quantitative statement the
// paper makes about its running example.
func TestFig3SupportsWindow11(t *testing.T) {
	db := Window11()
	cases := []struct {
		set  itemset.Itemset
		want int
	}{
		{itemset.New(C), 8},
		{itemset.New(A, C), 6},
		{itemset.New(B, C), 6},
		{itemset.New(A, B, C), 4},
	}
	for _, tc := range cases {
		if got := db.Support(tc.set); got != tc.want {
			t.Errorf("Ds(11,8): T(%v) = %d, want %d", tc.set, got, tc.want)
		}
	}
}

func TestFig3SupportsWindow12(t *testing.T) {
	db := Window12()
	cases := []struct {
		set  itemset.Itemset
		want int
	}{
		{itemset.New(C), 8},
		{itemset.New(A, C), 5},
		{itemset.New(B, C), 5},
		{itemset.New(A, B, C), 3},
	}
	for _, tc := range cases {
		if got := db.Support(tc.set); got != tc.want {
			t.Errorf("Ds(12,8): T(%v) = %d, want %d", tc.set, got, tc.want)
		}
	}
}

// Example 3: the pattern c·¬a·¬b has support 1 in Ds(12,8); the derivation
// T(c) - T(ac) - T(bc) + T(abc) = 8-5-5+3 = 1 must agree with ground truth.
func TestExample3PatternSupport(t *testing.T) {
	db := Window12()
	p := itemset.NewPattern(itemset.New(C), itemset.New(A, B))
	if got := db.PatternSupport(p); got != 1 {
		t.Errorf("T(c¬a¬b) = %d, want 1", got)
	}
	derived := db.Support(itemset.New(C)) - db.Support(itemset.New(A, C)) -
		db.Support(itemset.New(B, C)) + db.Support(itemset.New(A, B, C))
	if derived != 1 {
		t.Errorf("inclusion-exclusion derivation = %d, want 1", derived)
	}
}

// Example 5: the abc support transition between the windows is exactly -1.
func TestExample5Transition(t *testing.T) {
	abc := itemset.New(A, B, C)
	before := Window11().Support(abc)
	after := Window12().Support(abc)
	if before-after != 1 {
		t.Errorf("T(abc) transition = %d -> %d, want a drop of 1", before, after)
	}
}

func TestStreamLengthAndWindows(t *testing.T) {
	recs := Records()
	if len(recs) != 12 {
		t.Fatalf("stream has %d records, want 12", len(recs))
	}
	if Window11().Len() != WindowSize || Window12().Len() != WindowSize {
		t.Error("window snapshots are not H records wide")
	}
}
