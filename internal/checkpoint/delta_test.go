package checkpoint_test

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/faultinject"
	"repro/internal/itemset"
)

// testDelta builds a delta extending s by advance records, exercising every
// field: appended window records, cache upserts with binary keys, evictions,
// and a refreshed bias memo. seed varies the content so consecutive deltas
// differ.
func testDelta(tb testing.TB, s *checkpoint.Snapshot, advance int, seed uint64) *checkpoint.Delta {
	tb.Helper()
	n := advance
	if w := s.Meta.WindowSize; n > w {
		n = w
	}
	upserts := []core.CacheEntry{
		{Key: itemset.New(itemset.Item(seed), 5).Key(), TrueSupport: 30 + int(seed), Sanitized: 33, LastSeen: s.Publisher.Window + 1},
		{Key: itemset.New(itemset.Item(seed) + 1).Key(), TrueSupport: 41, Sanitized: 38 + int(seed), LastSeen: s.Publisher.Window + 1},
	}
	sort.Slice(upserts, func(i, j int) bool { return upserts[i].Key < upserts[j].Key })
	return &checkpoint.Delta{
		ParentRecords: s.Records,
		Records:       s.Records + uint64(advance),
		BadRecords:    s.BadRecords + 1,
		Published:     s.Published + 1,
		Appended:      data.WebViewLike(seed).Generate(n),
		Publisher: core.PublisherDelta{
			Window:     s.Publisher.Window + 1,
			RNG:        s.Publisher.RNG + seed*7,
			BiasReuses: s.Publisher.BiasReuses + 1,
			Ladder:     []core.LadderRung{{Support: 40 + int(seed), Size: 2}},
			Biases:     []int{int(seed) - 1},
			Upserts:    upserts,
		},
	}
}

// deepCopy round-trips a snapshot through the v1 codec — the cheapest
// guaranteed-deep copy, and one more exercise of the canonical format.
func deepCopy(tb testing.TB, s *checkpoint.Snapshot) *checkpoint.Snapshot {
	tb.Helper()
	enc, err := checkpoint.Encode(s)
	if err != nil {
		tb.Fatal(err)
	}
	c, err := checkpoint.Decode(enc)
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

func TestDeltaEncodeDecodeRoundTrip(t *testing.T) {
	anchor := testSnapshot(t)
	want := testDelta(t, anchor, 10, 3)
	want.Publisher.Evicted = []string{itemset.New(9).Key(), itemset.New(11).Key()}
	sort.Strings(want.Publisher.Evicted)
	payload, err := checkpoint.EncodeDelta(want, 0xCAFEF00D)
	if err != nil {
		t.Fatal(err)
	}
	got, parentCRC, err := checkpoint.DecodeDelta(payload)
	if err != nil {
		t.Fatal(err)
	}
	if parentCRC != 0xCAFEF00D {
		t.Fatalf("parent CRC %08x, want CAFEF00D", parentCRC)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed the delta:\n got %+v\nwant %+v", got, want)
	}
}

// TestDecodeDeltaCanonical: a successful decode re-encodes to the exact
// input bytes — the property the chain's CRC links (which hash payload
// bytes, not structures) rest on.
func TestDecodeDeltaCanonical(t *testing.T) {
	payload, err := checkpoint.EncodeDelta(testDelta(t, testSnapshot(t), 40, 1), 42)
	if err != nil {
		t.Fatal(err)
	}
	d, parentCRC, err := checkpoint.DecodeDelta(payload)
	if err != nil {
		t.Fatal(err)
	}
	re, err := checkpoint.EncodeDelta(d, parentCRC)
	if err != nil {
		t.Fatal(err)
	}
	if string(re) != string(payload) {
		t.Fatalf("decode/encode not canonical: %d bytes in, %d out", len(payload), len(re))
	}
}

// TestDecodeDeltaRejectsEveryTruncation: cutting the payload anywhere must
// surface as ErrCorrupt, never a panic or a silently short delta.
func TestDecodeDeltaRejectsEveryTruncation(t *testing.T) {
	payload, err := checkpoint.EncodeDelta(testDelta(t, testSnapshot(t), 10, 2), 7)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(payload); n++ {
		if _, _, err := checkpoint.DecodeDelta(payload[:n]); !errors.Is(err, checkpoint.ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: %v, want ErrCorrupt", n, err)
		}
	}
}

// TestEncodeDeltaRejectsMalformed: the encoder refuses deltas that violate
// the canonical-form invariants rather than writing bytes the decoder would
// reject.
func TestEncodeDeltaRejectsMalformed(t *testing.T) {
	anchor := testSnapshot(t)
	fresh := func() *checkpoint.Delta { return testDelta(t, anchor, 10, 2) }
	cases := []struct {
		name   string
		break_ func(d *checkpoint.Delta)
	}{
		{"records not past parent", func(d *checkpoint.Delta) { d.Records = d.ParentRecords }},
		{"ladder/bias mismatch", func(d *checkpoint.Delta) { d.Publisher.Biases = nil }},
		{"unsorted upserts", func(d *checkpoint.Delta) {
			u := d.Publisher.Upserts
			u[0], u[1] = u[1], u[0]
		}},
		{"duplicate upsert keys", func(d *checkpoint.Delta) {
			d.Publisher.Upserts[1].Key = d.Publisher.Upserts[0].Key
		}},
		{"duplicate evictions", func(d *checkpoint.Delta) {
			d.Publisher.Evicted = []string{"k", "k"}
		}},
		{"unsorted evictions", func(d *checkpoint.Delta) {
			d.Publisher.Evicted = []string{"z", "a"}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := fresh()
			tc.break_(d)
			if _, err := checkpoint.EncodeDelta(d, 0); err == nil {
				t.Fatal("malformed delta encoded")
			}
		})
	}
	if _, err := checkpoint.EncodeDelta(nil, 0); err == nil {
		t.Fatal("nil delta encoded")
	}
}

// TestApplyDeltaSlidesWindow covers both shapes of the window invariant: an
// advance smaller than the window appends-and-trims, and an advance larger
// than the window replaces the buffer wholesale with the last WindowSize
// records (the ones that did not slide straight through).
func TestApplyDeltaSlidesWindow(t *testing.T) {
	anchor := testSnapshot(t)
	w := anchor.Meta.WindowSize

	t.Run("partial advance", func(t *testing.T) {
		s := deepCopy(t, anchor)
		d := testDelta(t, s, 10, 4)
		want := append(append([]itemset.Itemset(nil), s.Window...), d.Appended...)
		want = want[len(want)-w:]
		if err := checkpoint.ApplyDelta(s, d); err != nil {
			t.Fatal(err)
		}
		if s.Records != d.Records || s.Published != d.Published || s.BadRecords != d.BadRecords {
			t.Fatalf("counters not advanced: %+v", s)
		}
		if len(s.Window) != w {
			t.Fatalf("window length %d, want %d", len(s.Window), w)
		}
		for i := range want {
			if !s.Window[i].Equal(want[i]) {
				t.Fatalf("window record %d: %v, want %v", i, s.Window[i], want[i])
			}
		}
	})

	t.Run("advance past a full window", func(t *testing.T) {
		s := deepCopy(t, anchor)
		d := testDelta(t, s, 3*w, 5) // helper caps Appended at w
		if len(d.Appended) != w {
			t.Fatalf("test delta carries %d appended, want %d", len(d.Appended), w)
		}
		if err := checkpoint.ApplyDelta(s, d); err != nil {
			t.Fatal(err)
		}
		for i := range d.Appended {
			if !s.Window[i].Equal(d.Appended[i]) {
				t.Fatalf("window record %d not replaced", i)
			}
		}
	})
}

// TestApplyDeltaMergesCache: evictions are applied before upserts, an upsert
// overwrites an existing entry or adds a new one, and the merged cache is
// re-sorted — the canonical order Encode requires.
func TestApplyDeltaMergesCache(t *testing.T) {
	s := deepCopy(t, testSnapshot(t))
	evictKey := s.Publisher.Cache[0].Key
	keptKey := s.Publisher.Cache[1].Key
	d := testDelta(t, s, 10, 6)
	d.Publisher.Upserts = []core.CacheEntry{
		{Key: keptKey, TrueSupport: 99, Sanitized: 101, LastSeen: 218},              // overwrite
		{Key: itemset.New(3, 4).Key(), TrueSupport: 7, Sanitized: 8, LastSeen: 218}, // insert
	}
	sort.Slice(d.Publisher.Upserts, func(i, j int) bool { return d.Publisher.Upserts[i].Key < d.Publisher.Upserts[j].Key })
	d.Publisher.Evicted = []string{evictKey}
	if err := checkpoint.ApplyDelta(s, d); err != nil {
		t.Fatal(err)
	}
	byKey := map[string]core.CacheEntry{}
	for i := 1; i < len(s.Publisher.Cache); i++ {
		if s.Publisher.Cache[i-1].Key >= s.Publisher.Cache[i].Key {
			t.Fatal("merged cache not strictly sorted")
		}
	}
	for _, e := range s.Publisher.Cache {
		byKey[e.Key] = e
	}
	if _, ok := byKey[evictKey]; ok {
		t.Fatal("evicted entry survived the merge")
	}
	if e := byKey[keptKey]; e.TrueSupport != 99 || e.Sanitized != 101 {
		t.Fatalf("upsert did not overwrite: %+v", e)
	}
	if _, ok := byKey[itemset.New(3, 4).Key()]; !ok {
		t.Fatal("inserted entry missing after merge")
	}
}

// TestApplyDeltaValidateThenCommit: a rejected delta leaves the snapshot
// byte-identical to before — the property chain replay relies on to degrade
// to a consistent prefix instead of a half-applied frame.
func TestApplyDeltaValidateThenCommit(t *testing.T) {
	s := deepCopy(t, testSnapshot(t))
	before, err := checkpoint.Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		break_ func(d *checkpoint.Delta)
	}{
		{"parent mismatch", func(d *checkpoint.Delta) { d.ParentRecords++; d.Records++ }},
		{"published regresses", func(d *checkpoint.Delta) { d.Published = s.Published }},
		{"bad records regress", func(d *checkpoint.Delta) { d.BadRecords = s.BadRecords - 1 }},
		{"appended too short", func(d *checkpoint.Delta) { d.Appended = d.Appended[:len(d.Appended)-1] }},
		{"appended exceeds window", func(d *checkpoint.Delta) {
			d.Appended = data.WebViewLike(9).Generate(s.Meta.WindowSize + 1)
		}},
		{"publisher window regresses", func(d *checkpoint.Delta) { d.Publisher.Window = s.Publisher.Window - 1 }},
		{"ladder/bias mismatch", func(d *checkpoint.Delta) { d.Publisher.Biases = nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := testDelta(t, s, 10, 7)
			tc.break_(d)
			if err := checkpoint.ApplyDelta(s, d); !errors.Is(err, checkpoint.ErrCorrupt) {
				t.Fatalf("ApplyDelta = %v, want ErrCorrupt", err)
			}
			after, err := checkpoint.Encode(s)
			if err != nil {
				t.Fatal(err)
			}
			if string(after) != string(before) {
				t.Fatal("rejected delta mutated the snapshot")
			}
		})
	}
}

// --- chain segment tests, driven through the Store ---

// chainStore saves an anchor and appends frames, returning the store, the
// anchor snapshot and the expected recovered snapshot (anchor + deltas,
// computed through ApplyDelta on an independent copy).
func chainStore(t *testing.T, dir string, frames int) (*checkpoint.Store, *checkpoint.Snapshot, *checkpoint.Snapshot) {
	t.Helper()
	st, err := checkpoint.NewStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	anchor := testSnapshot(t)
	if err := st.Save(anchor); err != nil {
		t.Fatal(err)
	}
	want := deepCopy(t, anchor)
	for i := 0; i < frames; i++ {
		d := testDelta(t, want, 10, uint64(i+1))
		if err := st.AppendDelta(d); err != nil {
			t.Fatalf("appending frame %d: %v", i+1, err)
		}
		if err := checkpoint.ApplyDelta(want, d); err != nil {
			t.Fatalf("applying frame %d to the model: %v", i+1, err)
		}
	}
	return st, anchor, want
}

// TestStoreDeltaChainRecovery: a full save plus appended frames recovers to
// exactly the state of applying every delta, and the ChainDetail names the
// ANCHOR position — the WAL-truncation floor — not the recovered tip.
func TestStoreDeltaChainRecovery(t *testing.T) {
	st, anchor, want := chainStore(t, t.TempDir(), 3)
	if got := st.ChainFrames(); got != 3 {
		t.Fatalf("ChainFrames = %d, want 3", got)
	}
	s, det, err := st.LatestDetail()
	if err != nil {
		t.Fatal(err)
	}
	if det.Frames != 3 || det.AnchorRecords != anchor.Records {
		t.Fatalf("ChainDetail = %+v, want 3 frames anchored at %d", det, anchor.Records)
	}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("recovered snapshot diverges from the applied chain:\n got %+v\nwant %+v", s, want)
	}
	// A second recovery sees the same bytes — nothing on disk moved.
	s2, _, err := st.LatestDetail()
	if err != nil || !reflect.DeepEqual(s2, want) {
		t.Fatalf("second recovery diverged: %v", err)
	}
}

// TestStoreDeltaChainSurvivesReopen: recovery does not depend on the writing
// process's in-memory chain state — a brand-new store over the same
// directory reads the same snapshot, but cannot EXTEND the chain (it never
// crosses a restart; the first save of a new run must be full).
func TestStoreDeltaChainSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	_, _, want := chainStore(t, dir, 2)
	st2, err := checkpoint.NewStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, det, err := st2.LatestDetail()
	if err != nil {
		t.Fatal(err)
	}
	if det.Frames != 2 || !reflect.DeepEqual(s, want) {
		t.Fatalf("reopened recovery = %d frames, snapshot match %v", det.Frames, reflect.DeepEqual(s, want))
	}
	d := testDelta(t, want, 10, 9)
	if err := st2.AppendDelta(d); err == nil ||
		!strings.Contains(err.Error(), "without an anchor") {
		t.Fatalf("AppendDelta on a reopened store = %v, want anchor error", err)
	}
}

func TestStoreAppendDeltaParentMismatch(t *testing.T) {
	st, _, want := chainStore(t, t.TempDir(), 1)
	d := testDelta(t, want, 10, 9)
	d.ParentRecords-- // does not extend the tip
	d.Records--
	if err := st.AppendDelta(d); err == nil || !strings.Contains(err.Error(), "does not extend chain tip") {
		t.Fatalf("AppendDelta with stale parent = %v, want chain-tip error", err)
	}
}

// TestStoreTornDeltaKeepsPrefix: a simulated process death mid-append leaves
// half a frame at the segment tail; recovery keeps every frame before it,
// with a warning naming the tear.
func TestStoreTornDeltaKeepsPrefix(t *testing.T) {
	dir := t.TempDir()
	st, _, _ := chainStore(t, dir, 2)
	var warnings []string
	st.Logf = func(format string, args ...any) {
		warnings = append(warnings, format)
	}
	// Save counter: 1 full + 2 deltas done; the next append is save 4.
	plan := &faultinject.CrashPlan{Point: checkpoint.CrashTornDelta, OnSave: 4}
	st.CrashHook = plan.Hook()
	s, det, err := st.LatestDetail()
	if err != nil {
		t.Fatal(err)
	}
	tip := s.Records
	d := testDelta(t, s, 10, 8)
	if err := st.AppendDelta(d); !errors.Is(err, checkpoint.ErrInjectedCrash) {
		t.Fatalf("AppendDelta under torn-delta plan = %v, want ErrInjectedCrash", err)
	}
	s, det, err = st.LatestDetail()
	if err != nil {
		t.Fatal(err)
	}
	if det.Frames != 2 || s.Records != tip {
		t.Fatalf("recovery after torn append = %d frames at records %d, want 2 frames at %d", det.Frames, s.Records, tip)
	}
	found := false
	for _, w := range warnings {
		if strings.Contains(w, "torn frame") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no torn-frame warning logged: %q", warnings)
	}
}

// TestStoreDeltaChainDegradesPastCorruption: a bit flip in an interior frame
// keeps the frames before it and drops everything after — the WAL-tail
// contract applied to the chain.
func TestStoreDeltaChainDegradesPastCorruption(t *testing.T) {
	dir := t.TempDir()
	st, anchor, _ := chainStore(t, dir, 3)
	st.Logf = func(string, ...any) {}
	seg := findOne(t, dir, "delta-*.bfdl")
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the segment body — inside frame 2 of 3
	// for any realistic frame size; assert only the prefix property.
	if err := faultinject.FlipByte(seg, info.Size()/2); err != nil {
		t.Fatal(err)
	}
	s, det, err := st.LatestDetail()
	if err != nil {
		t.Fatal(err)
	}
	if det.Frames >= 3 {
		t.Fatalf("corrupt chain still applied %d frames", det.Frames)
	}
	if s.Records <= anchor.Records && det.Frames > 0 {
		t.Fatalf("frames applied but records did not advance past the anchor: %+v", det)
	}
	// The recovered prefix must itself be a valid snapshot.
	if _, err := checkpoint.Encode(s); err != nil {
		t.Fatalf("recovered prefix does not re-encode: %v", err)
	}
}

// TestStoreCrossLinkedSegmentIgnored: a segment whose header does not bind
// to the full snapshot beside it (restored from a different backup, say)
// applies nothing; recovery falls back to the bare anchor.
func TestStoreCrossLinkedSegmentIgnored(t *testing.T) {
	dir := t.TempDir()
	st, anchor, _ := chainStore(t, dir, 2)
	var warnings []string
	st.Logf = func(format string, args ...any) {
		warnings = append(warnings, format)
	}
	seg := findOne(t, dir, "delta-*.bfdl")
	// Corrupt the anchor-CRC field of the segment header (the last 4 header
	// bytes): the chain now claims a different anchor.
	f, err := os.OpenFile(seg, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xDE, 0xAD, 0xBE, 0xEF}, int64(len("BFLYCKD2")+4+8)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s, det, err := st.LatestDetail()
	if err != nil {
		t.Fatal(err)
	}
	if det.Frames != 0 || s.Records != anchor.Records {
		t.Fatalf("cross-linked segment applied %d frames at records %d, want bare anchor %d",
			det.Frames, s.Records, anchor.Records)
	}
	found := false
	for _, w := range warnings {
		if strings.Contains(w, "cross-linked") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no cross-link warning logged: %q", warnings)
	}
}

// TestStoreResaveRemovesStaleSegment: a restarted process re-saving a full
// at a position an older incarnation also checkpointed must remove the old
// incarnation's chain segment — appending to it would splice two runs.
func TestStoreResaveRemovesStaleSegment(t *testing.T) {
	dir := t.TempDir()
	_, anchor, _ := chainStore(t, dir, 2)
	if findOne(t, dir, "delta-*.bfdl") == "" {
		t.Fatal("chain segment missing before the re-save")
	}
	st2, err := checkpoint.NewStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Save(anchor); err != nil {
		t.Fatal(err)
	}
	if segs, _ := filepath.Glob(filepath.Join(dir, "delta-*.bfdl")); len(segs) != 0 {
		t.Fatalf("stale segment survived the re-save: %v", segs)
	}
	s, det, err := st2.LatestDetail()
	if err != nil || det.Frames != 0 || s.Records != anchor.Records {
		t.Fatalf("recovery after re-save = %+v, %+v, %v; want the bare anchor", s, det, err)
	}
}

// TestStorePruneSweepsSegments: pruning a full generation removes its chain
// segment too, and orphan segments (no matching full at all) are swept.
func TestStorePruneSweepsSegments(t *testing.T) {
	dir := t.TempDir()
	st, err := checkpoint.NewStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	// An orphan segment from some lost incarnation.
	orphan := filepath.Join(dir, "delta-0000000000000001.bfdl")
	if err := os.WriteFile(orphan, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	base := testSnapshot(t)
	for i := 0; i < 3; i++ {
		s := deepCopy(t, base)
		s.Records = base.Records + uint64(i)*100
		if err := st.Save(s); err != nil {
			t.Fatal(err)
		}
		if err := st.AppendDelta(testDelta(t, s, 10, uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	gens, err := st.Generations()
	if err != nil || len(gens) != 2 {
		t.Fatalf("generations after pruning = %v, %v; want 2", gens, err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "delta-*.bfdl"))
	if len(segs) != 2 {
		t.Fatalf("segments after pruning = %v, want exactly the survivors' 2", segs)
	}
	for _, seg := range segs {
		if seg == orphan {
			t.Fatal("orphan segment survived the sweep")
		}
	}
}

// TestStoreWipeRemovesSegments: the fresh-create reset clears chains too.
func TestStoreWipeRemovesSegments(t *testing.T) {
	dir := t.TempDir()
	st, _, _ := chainStore(t, dir, 2)
	if err := st.Wipe(); err != nil {
		t.Fatal(err)
	}
	left, _ := filepath.Glob(filepath.Join(dir, "*.bf*"))
	if len(left) != 0 {
		t.Fatalf("files survive Wipe: %v", left)
	}
}

// TestApplyChainRejectsBadHeaders drives ApplyChain directly with hand-built
// segment bytes: short header, wrong magic, future version.
func TestApplyChainRejectsBadHeaders(t *testing.T) {
	anchor := testSnapshot(t)
	anchorCRC := uint32(0x12345678)
	header := func(version uint32, records uint64, crc uint32) []byte {
		b := []byte("BFLYCKD2")
		b = binary.LittleEndian.AppendUint32(b, version)
		b = binary.LittleEndian.AppendUint64(b, records)
		return binary.LittleEndian.AppendUint32(b, crc)
	}
	cases := []struct {
		name string
		seg  []byte
	}{
		{"empty", nil},
		{"short header", []byte("BFLYCKD2")},
		{"bad magic", append([]byte("NOTACHKD"), header(2, anchor.Records, anchorCRC)[8:]...)},
		{"future version", header(checkpoint.DeltaVersion+1, anchor.Records, anchorCRC)},
		{"wrong anchor records", header(checkpoint.DeltaVersion, anchor.Records+1, anchorCRC)},
		{"wrong anchor crc", header(checkpoint.DeltaVersion, anchor.Records, anchorCRC+1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := deepCopy(t, anchor)
			if n := checkpoint.ApplyChain(s, tc.seg, anchor.Records, anchorCRC, nil); n != 0 {
				t.Fatalf("applied %d frames from a %s segment", n, tc.name)
			}
			if !reflect.DeepEqual(s, anchor) {
				t.Fatal("rejected segment mutated the snapshot")
			}
		})
	}
}

// findOne globs for exactly one match.
func findOne(t *testing.T, dir, glob string) string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, glob))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("%s: %d matches (%v), want 1", glob, len(paths), paths)
	}
	return paths[0]
}
