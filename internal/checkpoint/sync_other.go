//go:build !linux

package checkpoint

import "os"

// datasync falls back to a full fsync where fdatasync is not available
// (or not distinguishable) — strictly stronger, never weaker.
func datasync(f *os.File) error {
	return f.Sync()
}
