// Package checkpoint makes the streaming publication pipeline crash-safe:
// it serializes the state a resumed run needs — the source position, the
// sliding-window transaction buffer, and the full publisher state (window
// counter, RNG cursor, republication cache, incremental-bias memo) — and
// manages a directory of checkpoint generations.
//
// The correctness bar is deterministic resume: a run killed at any
// checkpointed window boundary and restarted from the newest recoverable
// generation publishes the remaining windows byte-identically to an
// uninterrupted run. In particular a re-published window re-serves the SAME
// sanitized supports — the consistent-republication guarantee of §VI
// survives the crash, so an adversary cannot crash-loop the service to
// collect fresh perturbations and average the noise out.
//
// # On-disk formats
//
// A generation is either a FULL snapshot or a DELTA frame. Full snapshots
// (ckpt-%016d.bfck, named by record position so lexical order is stream
// order) use the version-1 format, frozen:
//
//	magic "BFLYCKPT" | uint32 LE version | payload | uint32 LE CRC32(IEEE)
//
// The checksum covers everything before it (magic, version, payload).
// Integers are varint-encoded (unsigned where the domain is non-negative,
// zigzag where it is not); itemsets are delta-encoded over their strictly
// increasing items.
//
// Delta frames (format version 2, see delta.go) live in an append-only
// chain segment (delta-%016d.bfdl) beside the full snapshot that anchors
// them. Each CRC-framed delta serializes only what changed since its parent
// — cache upserts/evictions, appended window records, the small always-hot
// scalars — and names the parent by record position and checksum, forming a
// hash chain rooted at the anchor file's bytes. `CheckpointFullEvery`
// compaction bounds chain length; version 1 remains the full-snapshot
// fallback every chain is rooted in.
//
// # Invariants
//
//   - Full saves are atomic: temp file, fsync, rename, directory fsync. A
//     crash at any instant leaves every earlier generation intact.
//   - Delta appends are one buffered write to an open segment; the chain
//     tail is synced when the next anchor supersedes it, on Close, or by OS
//     writeback. A torn, unsynced or corrupt tail degrades recovery to the
//     longest valid frame prefix (never a partial frame) — at worst the
//     bare anchor — exactly like internal/wal tails. Durability lives in
//     anchors (and the server's ingest WAL); frames bound replay.
//   - Decode and DecodeDelta never panic: torn, truncated, bit-flipped or
//     fabricated input surfaces as an error wrapping ErrCorrupt, and a
//     future-version header as one wrapping ErrVersion. Both formats are
//     canonical — decode then re-encode reproduces the input bytes.
//   - Recovery (Store.LatestDetail) walks fulls newest-first, skipping
//     undecodable ones, then applies the chosen full's valid chain prefix.
//     One corrupt file costs at most one generation of progress.
//   - External truncation horizons (the server's ingest-WAL floor) may only
//     advance on FULL saves, to the anchor position: replaying a chain
//     after the next crash needs the anchor and every record after it.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/core"
	"repro/internal/itemset"
)

// Version is the current wire-format version.
const Version = 1

// magic identifies a Butterfly checkpoint file.
const magic = "BFLYCKPT"

var (
	// ErrCorrupt marks a checkpoint file that failed structural validation:
	// bad magic, bad checksum, truncation, or inconsistent payload. The
	// store falls back to the previous generation on it.
	ErrCorrupt = errors.New("checkpoint: corrupt snapshot")
	// ErrVersion marks a checkpoint written by a newer format version —
	// undecodable by this build, but not evidence of disk corruption.
	ErrVersion = errors.New("checkpoint: unsupported snapshot version")
)

// Meta fingerprints the pipeline configuration a snapshot was taken under.
// Resume refuses a snapshot whose fingerprint differs from the running
// configuration: restoring an RNG cursor or republication cache into a
// differently-calibrated pipeline would silently break both determinism and
// the privacy guarantee.
type Meta struct {
	WindowSize  int
	Epsilon     float64
	Delta       float64
	MinSupport  int
	VulnSupport int
	Seed        uint64
	// Scheme is the bias scheme's Name(), parameters included.
	Scheme     string
	ClosedOnly bool
	Raw        bool
	// Chunked records the publisher draw-order tier (workers >= 2); the
	// two tiers draw different random offsets, so a snapshot from one
	// cannot resume the other.
	Chunked      bool
	PublishEvery int
}

// Snapshot is one consistent cut of the pipeline at a published window
// boundary: the window has been mined, perturbed AND delivered, and no
// later record has influenced any of the captured state.
type Snapshot struct {
	Meta Meta
	// Records is the number of well-formed records consumed from the
	// source up to and including the snapshot window's last record.
	Records uint64
	// BadRecords is the number of malformed records skipped so far.
	BadRecords uint64
	// Published is the number of windows delivered so far.
	Published uint64
	// Window is the sliding-window transaction buffer, oldest first.
	Window []itemset.Itemset
	// Publisher is the perturbation state (see core.PublisherState).
	Publisher core.PublisherState
}

// Encode serializes s in the version-1 format.
func Encode(s *Snapshot) ([]byte, error) {
	if s == nil {
		return nil, fmt.Errorf("checkpoint: nil snapshot")
	}
	b := []byte(magic)
	b = binary.LittleEndian.AppendUint32(b, Version)
	b = appendMeta(b, s.Meta)
	b = binary.AppendUvarint(b, s.Records)
	b = binary.AppendUvarint(b, s.BadRecords)
	b = binary.AppendUvarint(b, s.Published)
	b = binary.AppendUvarint(b, uint64(len(s.Window)))
	for _, rec := range s.Window {
		b = appendItemset(b, rec)
	}
	b = appendPublisher(b, &s.Publisher)
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b)), nil
}

// Decode parses an encoded snapshot, validating magic, version and checksum
// before touching the payload. Any malformation is an error wrapping
// ErrCorrupt (or ErrVersion for a future-version header); Decode never
// panics, whatever the bytes.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(magic)+4+4 {
		return nil, fmt.Errorf("%w: %d bytes, shorter than the fixed header", ErrCorrupt, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("%w: checksum %08x, want %08x", ErrCorrupt, got, sum)
	}
	if v := binary.LittleEndian.Uint32(data[len(magic):]); v != Version {
		return nil, fmt.Errorf("%w: version %d, this build reads %d", ErrVersion, v, Version)
	}
	r := &reader{b: body[len(magic)+4:]}
	s := &Snapshot{}
	var err error
	if s.Meta, err = r.meta(); err != nil {
		return nil, err
	}
	if s.Records, err = r.uvarint(); err != nil {
		return nil, err
	}
	if s.BadRecords, err = r.uvarint(); err != nil {
		return nil, err
	}
	if s.Published, err = r.uvarint(); err != nil {
		return nil, err
	}
	n, err := r.count("window records")
	if err != nil {
		return nil, err
	}
	s.Window = make([]itemset.Itemset, n)
	for i := range s.Window {
		if s.Window[i], err = r.itemset(); err != nil {
			return nil, err
		}
	}
	if err := r.publisher(&s.Publisher); err != nil {
		return nil, err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, r.remaining())
	}
	return s, nil
}

// ---- encoding helpers ----

func appendMeta(b []byte, m Meta) []byte {
	b = binary.AppendVarint(b, int64(m.WindowSize))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.Epsilon))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.Delta))
	b = binary.AppendVarint(b, int64(m.MinSupport))
	b = binary.AppendVarint(b, int64(m.VulnSupport))
	b = binary.LittleEndian.AppendUint64(b, m.Seed)
	b = appendString(b, m.Scheme)
	b = appendBool(b, m.ClosedOnly)
	b = appendBool(b, m.Raw)
	b = appendBool(b, m.Chunked)
	return binary.AppendVarint(b, int64(m.PublishEvery))
}

// appendItemset delta-encodes a canonical (strictly increasing) itemset:
// the first item verbatim, every later item as (gap-1) from its
// predecessor. Decoding therefore reconstructs a strictly increasing
// sequence by construction or fails.
func appendItemset(b []byte, s itemset.Itemset) []byte {
	items := s.Items()
	b = binary.AppendUvarint(b, uint64(len(items)))
	prev := int64(-1)
	for _, it := range items {
		b = binary.AppendUvarint(b, uint64(int64(it)-prev-1))
		prev = int64(it)
	}
	return b
}

func appendPublisher(b []byte, st *core.PublisherState) []byte {
	b = binary.AppendVarint(b, int64(st.Window))
	b = binary.LittleEndian.AppendUint64(b, st.RNG)
	b = binary.AppendVarint(b, int64(st.BiasReuses))
	b = binary.AppendUvarint(b, uint64(len(st.Ladder)))
	for _, r := range st.Ladder {
		b = binary.AppendVarint(b, int64(r.Support))
		b = binary.AppendVarint(b, int64(r.Size))
	}
	b = binary.AppendUvarint(b, uint64(len(st.Biases)))
	for _, bias := range st.Biases {
		b = binary.AppendVarint(b, int64(bias))
	}
	b = binary.AppendUvarint(b, uint64(len(st.Cache)))
	for _, e := range st.Cache {
		b = appendString(b, e.Key)
		b = binary.AppendVarint(b, int64(e.TrueSupport))
		b = binary.AppendVarint(b, int64(e.Sanitized))
		b = binary.AppendVarint(b, int64(e.LastSeen))
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// ---- decoding helpers ----

// reader is a panic-free cursor over the payload. Every length and count is
// validated against the remaining byte budget BEFORE allocation, so a
// fabricated header cannot make Decode allocate gigabytes.
type reader struct {
	b   []byte
	off int
}

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated uvarint at offset %d", ErrCorrupt, r.off)
	}
	r.off += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint at offset %d", ErrCorrupt, r.off)
	}
	r.off += n
	return v, nil
}

// vint decodes a varint that must fit a non-negative int.
func (r *reader) vint(what string) (int, error) {
	v, err := r.varint()
	if err != nil {
		return 0, err
	}
	if v < 0 || v > math.MaxInt32 {
		return 0, fmt.Errorf("%w: %s %d out of range", ErrCorrupt, what, v)
	}
	return int(v), nil
}

// count decodes an element count, rejecting any value larger than the
// remaining payload (every element takes at least one byte).
func (r *reader) count(what string) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(r.remaining()) {
		return 0, fmt.Errorf("%w: %s count %d exceeds %d remaining bytes",
			ErrCorrupt, what, v, r.remaining())
	}
	return int(v), nil
}

func (r *reader) uint32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, fmt.Errorf("%w: truncated u32 at offset %d", ErrCorrupt, r.off)
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) uint64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, fmt.Errorf("%w: truncated u64 at offset %d", ErrCorrupt, r.off)
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) float64() (float64, error) {
	v, err := r.uint64()
	return math.Float64frombits(v), err
}

func (r *reader) str(what string) (string, error) {
	n, err := r.count(what)
	if err != nil {
		return "", err
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s, nil
}

func (r *reader) bool() (bool, error) {
	if r.remaining() < 1 {
		return false, fmt.Errorf("%w: truncated bool at offset %d", ErrCorrupt, r.off)
	}
	v := r.b[r.off]
	r.off++
	if v > 1 {
		return false, fmt.Errorf("%w: bool byte %d", ErrCorrupt, v)
	}
	return v == 1, nil
}

func (r *reader) meta() (Meta, error) {
	var m Meta
	var err error
	if m.WindowSize, err = r.vint("window size"); err != nil {
		return m, err
	}
	if m.Epsilon, err = r.float64(); err != nil {
		return m, err
	}
	if m.Delta, err = r.float64(); err != nil {
		return m, err
	}
	if m.MinSupport, err = r.vint("min support"); err != nil {
		return m, err
	}
	if m.VulnSupport, err = r.vint("vulnerable support"); err != nil {
		return m, err
	}
	if m.Seed, err = r.uint64(); err != nil {
		return m, err
	}
	if m.Scheme, err = r.str("scheme name"); err != nil {
		return m, err
	}
	if m.ClosedOnly, err = r.bool(); err != nil {
		return m, err
	}
	if m.Raw, err = r.bool(); err != nil {
		return m, err
	}
	if m.Chunked, err = r.bool(); err != nil {
		return m, err
	}
	if m.PublishEvery, err = r.vint("publish interval"); err != nil {
		return m, err
	}
	return m, nil
}

func (r *reader) itemset() (itemset.Itemset, error) {
	n, err := r.count("itemset items")
	if err != nil {
		return itemset.Itemset{}, err
	}
	items := make([]itemset.Item, n)
	prev := int64(-1)
	for i := range items {
		gap, err := r.uvarint()
		if err != nil {
			return itemset.Itemset{}, err
		}
		v := prev + 1 + int64(gap)
		if v > math.MaxInt32 {
			return itemset.Itemset{}, fmt.Errorf("%w: item id %d overflows", ErrCorrupt, v)
		}
		items[i] = itemset.Item(v)
		prev = v
	}
	// The delta decoding above yields a strictly increasing sequence, the
	// FromSorted precondition, by construction.
	return itemset.FromSorted(items), nil
}

func (r *reader) publisher(st *core.PublisherState) error {
	var err error
	if st.Window, err = r.vint("publisher window counter"); err != nil {
		return err
	}
	if st.RNG, err = r.uint64(); err != nil {
		return err
	}
	if st.BiasReuses, err = r.vint("bias reuse counter"); err != nil {
		return err
	}
	rungs, err := r.count("ladder rungs")
	if err != nil {
		return err
	}
	st.Ladder = make([]core.LadderRung, rungs)
	for i := range st.Ladder {
		if st.Ladder[i].Support, err = r.vint("rung support"); err != nil {
			return err
		}
		if st.Ladder[i].Size, err = r.vint("rung size"); err != nil {
			return err
		}
	}
	biases, err := r.count("biases")
	if err != nil {
		return err
	}
	st.Biases = make([]int, biases)
	for i := range st.Biases {
		v, err := r.varint()
		if err != nil {
			return err
		}
		if v < math.MinInt32 || v > math.MaxInt32 {
			return fmt.Errorf("%w: bias %d out of range", ErrCorrupt, v)
		}
		st.Biases[i] = int(v)
	}
	if len(st.Biases) != len(st.Ladder) {
		return fmt.Errorf("%w: %d biases for %d ladder rungs", ErrCorrupt, len(st.Biases), len(st.Ladder))
	}
	entries, err := r.count("cache entries")
	if err != nil {
		return err
	}
	st.Cache = make([]core.CacheEntry, entries)
	for i := range st.Cache {
		e := &st.Cache[i]
		if e.Key, err = r.str("cache key"); err != nil {
			return err
		}
		if e.TrueSupport, err = r.vint("cached true support"); err != nil {
			return err
		}
		v, err := r.varint()
		if err != nil {
			return err
		}
		if v < math.MinInt32 || v > math.MaxInt32 {
			return fmt.Errorf("%w: sanitized support %d out of range", ErrCorrupt, v)
		}
		e.Sanitized = int(v)
		if e.LastSeen, err = r.vint("cache last-seen window"); err != nil {
			return err
		}
	}
	return nil
}
