package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestLeaseAcquireReleaseCycle(t *testing.T) {
	dir := t.TempDir()
	l, err := AcquireLease(dir, "stream-a")
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, LeaseFileName)); err != nil {
		t.Fatalf("lease file missing after acquire: %v", err)
	}
	// A second acquire while held — by this very process — must refuse.
	if _, err := AcquireLease(dir, "stream-a"); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("second acquire = %v, want ErrLeaseHeld", err)
	}
	if err := l.Release(); err != nil {
		t.Fatalf("release: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, LeaseFileName)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("lease file survives release: %v", err)
	}
	// Released: acquirable again, and double-release stays a no-op.
	l2, err := AcquireLease(dir, "stream-a")
	if err != nil {
		t.Fatalf("re-acquire after release: %v", err)
	}
	if err := l.Release(); err != nil {
		t.Fatalf("double release: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, LeaseFileName)); err != nil {
		t.Fatal("double release removed the NEW holder's lease")
	}
	if err := l2.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestLeaseStaleSteal plants a lease naming a dead pid — the SIGKILL
// leftovers a restarted server finds — and checks it is stolen silently.
func TestLeaseStaleSteal(t *testing.T) {
	dir := t.TempDir()
	// Spawn-and-reap a real child so the pid is provably dead (pid reuse in
	// the test's lifetime is implausible); fall back to a absurd pid if
	// /proc games are unavailable. Simplest portable stand-in: a pid beyond
	// the default pid_max is never alive.
	stale := fmt.Sprintf("%d deadbeef old-owner\n", 1<<30)
	if err := os.WriteFile(filepath.Join(dir, LeaseFileName), []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := AcquireLease(dir, "new-owner")
	if err != nil {
		t.Fatalf("acquire over stale lease: %v", err)
	}
	defer l.Release()
}

// TestLeaseMalformedIsStale: an unparsable lease file (torn write during a
// crash) must not brick the directory forever.
func TestLeaseMalformedIsStale(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, LeaseFileName), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := AcquireLease(dir, "owner")
	if err != nil {
		t.Fatalf("acquire over malformed lease: %v", err)
	}
	defer l.Release()
}

func TestLeaseEmptyDirRejected(t *testing.T) {
	if _, err := AcquireLease("", "x"); err == nil {
		t.Fatal("empty dir accepted")
	}
}

// TestStoreOnSaveHook checks the durability notification fires once per
// successful save with the persisted snapshot, and not on injected
// crashes.
func TestStoreOnSaveHook(t *testing.T) {
	st, err := NewStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	st.OnSave = func(sv Saved) {
		if !sv.Full {
			t.Errorf("Save reported Full=false for a full snapshot")
		}
		got = append(got, sv.Records)
	}
	snap := &Snapshot{Meta: Meta{WindowSize: 1}, Records: 7, Window: nil}
	// Window length 0 is fine at the store layer; only pipeline resume
	// validates it against a config.
	if err := st.Save(snap); err != nil {
		t.Fatal(err)
	}
	st.CrashHook = func(point string, save int) bool { return point == CrashBeforeRename }
	snap.Records = 9
	if err := st.Save(snap); err == nil {
		t.Fatal("injected crash did not fail the save")
	}
	st.CrashHook = nil
	snap.Records = 11
	if err := st.Save(snap); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 7 || got[1] != 11 {
		t.Fatalf("OnSave records = %v, want [7 11]", got)
	}
}
