package checkpoint_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/faultinject"
)

func snapshotAt(t testing.TB, records uint64) *checkpoint.Snapshot {
	t.Helper()
	s := testSnapshot(t)
	s.Records = records
	return s
}

func TestStoreSaveLoadLatest(t *testing.T) {
	st, err := checkpoint.NewStore(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []uint64{100, 200, 300} {
		if err := st.Save(snapshotAt(t, pos)); err != nil {
			t.Fatal(err)
		}
	}
	gens, err := st.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 3 {
		t.Fatalf("%d generations, want 3", len(gens))
	}
	s, path, err := st.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if s == nil || s.Records != 300 {
		t.Fatalf("Latest = %+v at %s, want the snapshot at record 300", s, path)
	}
	if path != gens[len(gens)-1] {
		t.Fatalf("Latest path %s is not the newest generation %s", path, gens[len(gens)-1])
	}
}

func TestStorePrunesToKeep(t *testing.T) {
	st, err := checkpoint.NewStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for pos := uint64(1); pos <= 5; pos++ {
		if err := st.Save(snapshotAt(t, pos*100)); err != nil {
			t.Fatal(err)
		}
	}
	gens, err := st.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 {
		t.Fatalf("%d generations survive pruning, want 2", len(gens))
	}
	// The survivors are the NEWEST two.
	s, _, err := st.Latest()
	if err != nil || s.Records != 500 {
		t.Fatalf("Latest after pruning = %+v, %v", s, err)
	}
	first, err := checkpoint.Load(gens[0])
	if err != nil || first.Records != 400 {
		t.Fatalf("oldest survivor = %+v, %v; want record 400", first, err)
	}
}

func TestEmptyStoreLatest(t *testing.T) {
	st, err := checkpoint.NewStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s, path, err := st.Latest()
	if err != nil || s != nil || path != "" {
		t.Fatalf("empty store Latest = (%v, %q, %v), want (nil, \"\", nil)", s, path, err)
	}
}

func TestNewStoreRejectsEmptyDir(t *testing.T) {
	if _, err := checkpoint.NewStore("", 3); err == nil {
		t.Fatal("empty directory accepted")
	}
}

// TestLatestFallsBackPastCorruption: bit rot in the newest generation costs
// one generation of progress, with a logged warning — never the run.
func TestLatestFallsBackPastCorruption(t *testing.T) {
	st, err := checkpoint.NewStore(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	var warnings []string
	st.Logf = func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	}
	for _, pos := range []uint64{100, 200} {
		if err := st.Save(snapshotAt(t, pos)); err != nil {
			t.Fatal(err)
		}
	}
	gens, err := st.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.FlipByte(gens[1], -1); err != nil {
		t.Fatal(err)
	}
	s, path, err := st.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if s == nil || s.Records != 100 {
		t.Fatalf("Latest past corruption = %+v at %s, want the record-100 generation", s, path)
	}
	if len(warnings) == 0 || !strings.Contains(warnings[0], "skipping unusable generation") {
		t.Fatalf("no fallback warning logged: %q", warnings)
	}
}

// TestLatestFallsBackPastTruncation: a torn (half-written) newest file is
// equally detected and skipped.
func TestLatestFallsBackPastTruncation(t *testing.T) {
	st, err := checkpoint.NewStore(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []uint64{100, 200} {
		if err := st.Save(snapshotAt(t, pos)); err != nil {
			t.Fatal(err)
		}
	}
	gens, err := st.Generations()
	if err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(gens[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.TruncateFile(gens[1], info.Size()/2); err != nil {
		t.Fatal(err)
	}
	s, _, err := st.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if s == nil || s.Records != 100 {
		t.Fatalf("Latest past truncation = %+v, want the record-100 generation", s)
	}
}

// TestCrashPointsLeaveEarlierGenerationsIntact walks every crash point of
// the write protocol and asserts the invariant the resume path depends on:
// whatever the interruption, Latest still returns the last fully-committed
// snapshot.
func TestCrashPointsLeaveEarlierGenerationsIntact(t *testing.T) {
	for _, point := range []string{
		checkpoint.CrashBeforeWrite,
		checkpoint.CrashBeforeRename,
		checkpoint.CrashTornWrite,
	} {
		t.Run(point, func(t *testing.T) {
			st, err := checkpoint.NewStore(t.TempDir(), 3)
			if err != nil {
				t.Fatal(err)
			}
			st.Logf = func(string, ...any) {}
			if err := st.Save(snapshotAt(t, 100)); err != nil {
				t.Fatal(err)
			}
			plan := &faultinject.CrashPlan{Point: point, OnSave: 2}
			st.CrashHook = plan.Hook()
			err = st.Save(snapshotAt(t, 200))
			if !errors.Is(err, checkpoint.ErrInjectedCrash) {
				t.Fatalf("Save under crash plan: %v, want ErrInjectedCrash", err)
			}
			if plan.Fired() != 1 {
				t.Fatalf("crash fired %d times, want 1", plan.Fired())
			}
			s, _, err := st.Latest()
			if err != nil {
				t.Fatal(err)
			}
			if s == nil || s.Records != 100 {
				t.Fatalf("Latest after crash at %s = %+v, want the record-100 generation", point, s)
			}
			// The interrupted protocol leaves debris (a temp file, a torn
			// final file) but never blocks the next save: a restarted process
			// writing the same generation again must simply succeed.
			st.CrashHook = nil
			if err := st.Save(snapshotAt(t, 200)); err != nil {
				t.Fatalf("Save after simulated restart: %v", err)
			}
			s, _, err = st.Latest()
			if err != nil || s == nil || s.Records != 200 {
				t.Fatalf("Latest after recovery save = %+v, %v", s, err)
			}
		})
	}
}

// TestCrashBeforeRenameLeavesNoVisibleGeneration: the temp file of an
// interrupted save must not be picked up as a generation.
func TestCrashBeforeRenameLeavesNoVisibleGeneration(t *testing.T) {
	dir := t.TempDir()
	st, err := checkpoint.NewStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	plan := &faultinject.CrashPlan{Point: checkpoint.CrashBeforeRename, OnSave: 1}
	st.CrashHook = plan.Hook()
	if err := st.Save(snapshotAt(t, 100)); !errors.Is(err, checkpoint.ErrInjectedCrash) {
		t.Fatalf("Save: %v", err)
	}
	tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil || len(tmps) != 1 {
		t.Fatalf("orphan temp files = %v, %v; want exactly one", tmps, err)
	}
	gens, err := st.Generations()
	if err != nil || len(gens) != 0 {
		t.Fatalf("generations = %v, %v; want none (temp file must not count)", gens, err)
	}
}
