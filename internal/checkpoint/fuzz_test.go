package checkpoint_test

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/checkpoint"
)

// FuzzCheckpointDecode pins the decoder's safety contract: whatever the
// bytes — torn, bit-flipped, fabricated, adversarial — Decode must return
// either a valid snapshot or an error wrapping ErrCorrupt/ErrVersion. It
// must never panic, and a successful decode must re-encode to the exact
// input (the format is canonical), so corruption can never round-trip
// silently.
func FuzzCheckpointDecode(f *testing.F) {
	valid, err := checkpoint.Encode(testSnapshot(f))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // torn write
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-2] ^= 0xFF // damaged checksum
	f.Add(flipped)
	future := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(future[8:], checkpoint.Version+1)
	binary.LittleEndian.PutUint32(future[len(future)-4:],
		crc32.ChecksumIEEE(future[:len(future)-4]))
	f.Add(future) // well-formed file from a newer build
	f.Add([]byte("BFLYCKPT"))
	f.Add([]byte{})
	// Delta-chain material: a v2 segment handed to the v1 decoder must be
	// cleanly rejected (different magic), whole, truncated or cross-linked.
	seg := testSegment(f)
	f.Add(seg)
	f.Add(seg[:len(seg)/2])
	crossed := append([]byte(nil), seg...)
	crossed[20] ^= 0xFF // anchor-CRC field of the segment header
	f.Add(crossed)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := checkpoint.Decode(data)
		if err != nil {
			if !errors.Is(err, checkpoint.ErrCorrupt) && !errors.Is(err, checkpoint.ErrVersion) {
				t.Fatalf("decode error outside the contract: %v", err)
			}
			if s != nil {
				t.Fatal("snapshot returned alongside an error")
			}
			return
		}
		re, err := checkpoint.Encode(s)
		if err != nil {
			t.Fatalf("re-encoding a decoded snapshot: %v", err)
		}
		if string(re) != string(data) {
			t.Fatalf("decode/encode not canonical: %d bytes in, %d out", len(data), len(re))
		}
	})
}

// testSegment builds a real two-frame chain segment through the store and
// returns its bytes. Deterministic: testSnapshot and testDelta derive all
// content from fixed seeds.
func testSegment(f *testing.F) []byte {
	f.Helper()
	dir := f.TempDir()
	st, err := checkpoint.NewStore(dir, 3)
	if err != nil {
		f.Fatal(err)
	}
	s := testSnapshot(f)
	if err := st.Save(s); err != nil {
		f.Fatal(err)
	}
	tip := deepCopy(f, s)
	for i := uint64(1); i <= 2; i++ {
		d := testDelta(f, tip, 10, i)
		if err := st.AppendDelta(d); err != nil {
			f.Fatal(err)
		}
		if err := checkpoint.ApplyDelta(tip, d); err != nil {
			f.Fatal(err)
		}
	}
	segs, err := filepath.Glob(filepath.Join(dir, "delta-*.bfdl"))
	if err != nil || len(segs) != 1 {
		f.Fatalf("segment glob = %v, %v", segs, err)
	}
	seg, err := os.ReadFile(segs[0])
	if err != nil {
		f.Fatal(err)
	}
	return seg
}

// FuzzCheckpointDeltaChain pins the chain replayer's safety contract:
// whatever the segment bytes — torn appends, bit flips, frames spliced from
// another chain, fabricated headers — ApplyChain must never panic, must
// apply only a consistent prefix (the result still re-encodes as a valid
// snapshot), and must apply nothing at all when the header does not bind to
// the anchor. DecodeDelta is held to the same canonical-format contract as
// the v1 decoder along the way.
func FuzzCheckpointDeltaChain(f *testing.F) {
	seg := testSegment(f)
	f.Add(seg)
	f.Add(seg[:len(seg)-7]) // torn mid-frame, like a crash during AppendDelta
	f.Add(seg[:checkpoint.SegHeaderLen])
	orphan := append([]byte(nil), seg...)
	binary.LittleEndian.PutUint64(orphan[12:], 999) // anchored to a full that never existed
	f.Add(orphan)
	crossed := append([]byte(nil), seg...)
	crossed[checkpoint.SegHeaderLen+5] ^= 0xFF // damage the first frame's parent fingerprint
	f.Add(crossed)
	f.Add([]byte("BFLYCKD2"))
	f.Add([]byte{})

	anchorBytes, err := checkpoint.Encode(testSnapshot(f))
	if err != nil {
		f.Fatal(err)
	}
	anchorCRC := crc32.ChecksumIEEE(anchorBytes)

	f.Fuzz(func(t *testing.T, data []byte) {
		anchor, err := checkpoint.Decode(anchorBytes)
		if err != nil {
			t.Fatal(err)
		}
		applied := checkpoint.ApplyChain(anchor, data, anchor.Records, anchorCRC, nil)
		if applied < 0 {
			t.Fatalf("ApplyChain applied %d frames", applied)
		}
		if applied == 0 && anchorCRC != crc32.ChecksumIEEE(mustEncode(t, anchor)) {
			t.Fatal("rejected segment mutated the anchor")
		}
		// Whatever prefix was applied, the result is a coherent snapshot.
		mustEncode(t, anchor)

		// The frame payload decoder shares the v1 contract: error wrapping
		// ErrCorrupt, or a canonical re-encode.
		d, parentCRC, err := checkpoint.DecodeDelta(data)
		if err != nil {
			if !errors.Is(err, checkpoint.ErrCorrupt) {
				t.Fatalf("DecodeDelta error outside the contract: %v", err)
			}
			return
		}
		re, err := checkpoint.EncodeDelta(d, parentCRC)
		if err != nil {
			t.Fatalf("re-encoding a decoded delta: %v", err)
		}
		if string(re) != string(data) {
			t.Fatalf("delta decode/encode not canonical: %d bytes in, %d out", len(data), len(re))
		}
	})
}

func mustEncode(t *testing.T, s *checkpoint.Snapshot) []byte {
	t.Helper()
	enc, err := checkpoint.Encode(s)
	if err != nil {
		t.Fatalf("snapshot no longer encodes: %v", err)
	}
	return enc
}
