package checkpoint_test

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"repro/internal/checkpoint"
)

// FuzzCheckpointDecode pins the decoder's safety contract: whatever the
// bytes — torn, bit-flipped, fabricated, adversarial — Decode must return
// either a valid snapshot or an error wrapping ErrCorrupt/ErrVersion. It
// must never panic, and a successful decode must re-encode to the exact
// input (the format is canonical), so corruption can never round-trip
// silently.
func FuzzCheckpointDecode(f *testing.F) {
	valid, err := checkpoint.Encode(testSnapshot(f))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // torn write
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-2] ^= 0xFF // damaged checksum
	f.Add(flipped)
	future := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(future[8:], checkpoint.Version+1)
	binary.LittleEndian.PutUint32(future[len(future)-4:],
		crc32.ChecksumIEEE(future[:len(future)-4]))
	f.Add(future) // well-formed file from a newer build
	f.Add([]byte("BFLYCKPT"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := checkpoint.Decode(data)
		if err != nil {
			if !errors.Is(err, checkpoint.ErrCorrupt) && !errors.Is(err, checkpoint.ErrVersion) {
				t.Fatalf("decode error outside the contract: %v", err)
			}
			if s != nil {
				t.Fatal("snapshot returned alongside an error")
			}
			return
		}
		re, err := checkpoint.Encode(s)
		if err != nil {
			t.Fatalf("re-encoding a decoded snapshot: %v", err)
		}
		if string(re) != string(data) {
			t.Fatalf("decode/encode not canonical: %d bytes in, %d out", len(data), len(re))
		}
	})
}
