package checkpoint_test

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/itemset"
)

// testSnapshot builds a snapshot exercising every field: a realistic window
// buffer, a populated republication cache (with binary itemset keys), and a
// non-empty bias memo.
func testSnapshot(t testing.TB) *checkpoint.Snapshot {
	t.Helper()
	window := data.WebViewLike(5).Generate(40)
	return &checkpoint.Snapshot{
		Meta: checkpoint.Meta{
			WindowSize:   40,
			Epsilon:      0.016,
			Delta:        0.4,
			MinSupport:   25,
			VulnSupport:  5,
			Seed:         0xDEADBEEF,
			Scheme:       "hybrid(0.40)",
			ClosedOnly:   true,
			Chunked:      true,
			PublishEvery: 7,
		},
		Records:    123456,
		BadRecords: 3,
		Published:  217,
		Window:     window,
		Publisher: core.PublisherState{
			Window:     217,
			RNG:        0x0123456789ABCDEF,
			BiasReuses: 12,
			Ladder:     []core.LadderRung{{Support: 40, Size: 2}, {Support: 31, Size: 5}},
			Biases:     []int{3, -2},
			Cache: []core.CacheEntry{
				{Key: itemset.New(1, 5).Key(), TrueSupport: 30, Sanitized: 33, LastSeen: 216},
				{Key: itemset.New(2).Key(), TrueSupport: 41, Sanitized: 38, LastSeen: 217},
			},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := testSnapshot(t)
	enc, err := checkpoint.Encode(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := checkpoint.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed the snapshot:\n got %+v\nwant %+v", got, want)
	}
}

// TestEncodeDeterministic: equal snapshots serialize to equal bytes — the
// property the resume fingerprint comparisons and the tests' byte-level
// assertions rest on.
func TestEncodeDeterministic(t *testing.T) {
	a, err := checkpoint.Encode(testSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := checkpoint.Encode(testSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("equal snapshots encoded to different bytes")
	}
}

// TestDecodeRejectsEveryTruncation: cutting the encoding anywhere must
// surface as ErrCorrupt, never a panic or a silently short snapshot.
func TestDecodeRejectsEveryTruncation(t *testing.T) {
	enc, err := checkpoint.Encode(testSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(enc); n++ {
		if _, err := checkpoint.Decode(enc[:n]); !errors.Is(err, checkpoint.ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: %v, want ErrCorrupt", n, err)
		}
	}
}

// TestDecodeRejectsEveryBitFlip: the checksum covers the whole file, so any
// single flipped byte is detected.
func TestDecodeRejectsEveryBitFlip(t *testing.T) {
	enc, err := checkpoint.Encode(testSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0xFF
		if _, err := checkpoint.Decode(bad); !errors.Is(err, checkpoint.ErrCorrupt) {
			t.Fatalf("flip at byte %d: %v, want ErrCorrupt", i, err)
		}
	}
}

// TestDecodeFutureVersion: a well-formed file from a newer format version —
// valid checksum, unknown layout — reports ErrVersion, not corruption.
func TestDecodeFutureVersion(t *testing.T) {
	enc, err := checkpoint.Encode(testSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	future := append([]byte(nil), enc...)
	binary.LittleEndian.PutUint32(future[8:], checkpoint.Version+1)
	body := future[:len(future)-4]
	binary.LittleEndian.PutUint32(future[len(future)-4:], crc32.ChecksumIEEE(body))
	if _, err := checkpoint.Decode(future); !errors.Is(err, checkpoint.ErrVersion) {
		t.Fatalf("future version: %v, want ErrVersion", err)
	}
}

// TestDecodeRejectsTrailingBytes: extra payload past the snapshot (with a
// recomputed checksum, so only structural validation can catch it) is
// corruption.
func TestDecodeRejectsTrailingBytes(t *testing.T) {
	enc, err := checkpoint.Encode(testSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	padded := append(append([]byte(nil), enc[:len(enc)-4]...), 0, 0, 0)
	padded = binary.LittleEndian.AppendUint32(padded, crc32.ChecksumIEEE(padded))
	if _, err := checkpoint.Decode(padded); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("trailing bytes: %v, want ErrCorrupt", err)
	}
}

// TestDecodeRejectsHugeCounts: a fabricated payload claiming a gigantic
// element count must be rejected before allocation, not OOM the process.
func TestDecodeRejectsHugeCounts(t *testing.T) {
	s := testSnapshot(t)
	s.Window = nil
	enc, err := checkpoint.Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	// The window count is a zero uvarint right after the three position
	// uvarints; overwrite the tail with a huge count and reseal the CRC. The
	// exact offset does not matter for the property under test: whatever
	// field the bogus count lands in must be rejected structurally.
	bogus := append([]byte(nil), enc[:len(enc)-4]...)
	bogus = binary.AppendUvarint(bogus, 1<<40)
	bogus = binary.LittleEndian.AppendUint32(bogus, crc32.ChecksumIEEE(bogus))
	if _, err := checkpoint.Decode(bogus); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("huge count: %v, want ErrCorrupt", err)
	}
}

func TestEncodeNil(t *testing.T) {
	if _, err := checkpoint.Encode(nil); err == nil {
		t.Fatal("nil snapshot encoded")
	}
}

// TestItemsetDeltaRoundTrip covers sparse, high-id itemsets specifically:
// the delta encoding must survive large gaps and singletons.
func TestItemsetDeltaRoundTrip(t *testing.T) {
	s := testSnapshot(t)
	s.Window = []itemset.Itemset{
		itemset.New(0),
		itemset.New(0, 1, 2, 3),
		itemset.New(7, 100000, 2000000),
		{}, // empty transaction
	}
	enc, err := checkpoint.Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := checkpoint.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Window {
		if !got.Window[i].Equal(s.Window[i]) {
			t.Fatalf("window record %d: %v, want %v", i, got.Window[i], s.Window[i])
		}
	}
}
