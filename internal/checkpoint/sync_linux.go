//go:build linux

package checkpoint

import (
	"os"
	"syscall"
)

// datasync flushes a file's data and retrieval-critical metadata (its size)
// without forcing a timestamp journal commit. Recovery only ever needs the
// bytes and the length — frames past the durable tip are discarded by CRC
// anyway — so fdatasync gives the same crash guarantee as fsync at a
// measurably lower cost on the append-heavy delta-chain hot path.
func datasync(f *os.File) error {
	return syscall.Fdatasync(int(f.Fd()))
}
