package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Crash points of the write protocol, consulted through Store.CrashHook so
// the fault-injection suite can simulate a process death at each stage.
// They are part of the store's tested contract:
//
//   - CrashBeforeWrite: nothing has touched the disk; every existing
//     generation is intact. (Fires for both full saves and delta appends.)
//   - CrashBeforeRename: the temp file is fully written and synced but the
//     atomic rename never happened; recovery ignores the orphan. (Full
//     saves only — delta appends have no rename step.)
//   - CrashTornWrite: simulates a filesystem without atomic rename — a
//     torn half-snapshot lands under the FINAL generation name; recovery
//     must detect it by checksum and fall back a generation.
//   - CrashTornDelta: the process dies mid-append — half a delta frame
//     lands at the tail of the chain segment; recovery must degrade to the
//     frames before it.
const (
	CrashBeforeWrite  = "before-write"
	CrashBeforeRename = "before-rename"
	CrashTornWrite    = "torn-write"
	CrashTornDelta    = "torn-delta"
)

// ErrInjectedCrash is returned by Save when the CrashHook fired: the test
// harness's stand-in for the process dying mid-protocol.
var ErrInjectedCrash = errors.New("checkpoint: injected crash")

// DefaultKeep is how many snapshot generations a store retains when the
// caller does not say otherwise.
const DefaultKeep = 3

// patterns match generation and delta-segment files; the zero-padded record
// position makes lexical order equal stream order. A chain segment shares
// its anchor full snapshot's record position.
const (
	genFormat   = "ckpt-%016d.bfck"
	genGlob     = "ckpt-*.bfck"
	deltaFormat = "delta-%016d.bfdl"
	deltaGlob   = "delta-*.bfdl"
)

// Saved describes one durably-persisted checkpoint generation — the payload
// of the Store.OnSave notification. Full distinguishes anchor full
// snapshots from delta frames: only a full snapshot may advance external
// truncation horizons (the server's WAL floor), because chain recovery
// needs every record after the newest full's position.
type Saved struct {
	// Records and BadRecords are the persisted cut's stream counters, with
	// the same meaning as the Snapshot fields.
	Records    uint64
	BadRecords uint64
	// Full is true for an anchor full snapshot, false for a delta frame.
	Full bool
}

// chainState tracks the delta chain rooted at the most recent full save.
type chainState struct {
	open        bool     // a full snapshot anchored a chain this process can extend
	anchor      uint64   // anchor full snapshot's Records position
	anchorCRC   uint32   // CRC32 of the anchor file's complete bytes
	lastCRC     uint32   // CRC32 of the chain tip (anchor file or last frame payload)
	lastRecords uint64   // Records position of the chain tip
	frames      int      // frames appended since the anchor
	dirty       bool     // frames written since the last datasync
	path        string   // segment file path
	f           *os.File // open segment file, created lazily on first append
}

// Store manages a directory of checkpoint generations: full snapshots,
// atomically written (temp file, fsync, rename, directory fsync) and pruned
// to the last keep generations, plus one append-only delta-chain segment
// beside each full (see delta.go). Loads walk full snapshots newest-first,
// skipping any that fails validation, then extend the chosen full with its
// chain's longest valid frame prefix — one corrupt file costs at most one
// generation of progress, never the run.
//
// Store is used from a single goroutine (the pipeline's emit stage), like
// the sources and sinks around it.
type Store struct {
	dir  string
	keep int

	// Logf, when non-nil, receives warnings the store absorbs — a corrupt
	// generation skipped during recovery, an unprunable stale file. The
	// CLI points it at stderr; tests capture it.
	Logf func(format string, args ...any)

	// CrashHook, when non-nil, is consulted with each crash point and the
	// 1-based save number; returning true simulates a process crash there
	// (see the CrashBefore*/CrashTorn constants). Test-only, like
	// core.Publisher's chunkHook. Save and AppendDelta share the save
	// counter, so a crash plan addresses a generation regardless of kind.
	CrashHook func(point string, save int) bool

	// OnSave, when non-nil, is called after each successfully persisted
	// generation — full or delta — with its stream position. It is the
	// durability notification the multi-stream server uses to prune replay
	// buffers and advance WAL truncation. It runs on the saving goroutine
	// (the pipeline's emit stage), after the write protocol has completed.
	OnSave func(sv Saved)

	saves         int
	chain         chainState
	frameBuf      []byte // reusable append buffer for header+frame bytes
	lastSaveBytes int
}

// NewStore opens (creating if needed) a checkpoint directory retaining the
// last keep generations; keep <= 0 selects DefaultKeep.
func NewStore(dir string, keep int) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: empty store directory")
	}
	if keep <= 0 {
		keep = DefaultKeep
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: creating store: %w", err)
	}
	return &Store{dir: dir, keep: keep}, nil
}

// Dir returns the store directory.
func (st *Store) Dir() string { return st.dir }

func (st *Store) logf(format string, args ...any) {
	if st.Logf != nil {
		st.Logf(format, args...)
	}
}

func (st *Store) crash(point string) bool {
	return st.CrashHook != nil && st.CrashHook(point, st.saves)
}

// Save atomically persists s as the generation named by its record
// position, then prunes generations beyond the retention limit. A snapshot
// is only visible under its final name once fully written and synced; a
// crash at any point of the protocol leaves every earlier generation
// intact.
func (st *Store) Save(s *Snapshot) error {
	st.saves++
	if st.crash(CrashBeforeWrite) {
		return fmt.Errorf("%w: at %s", ErrInjectedCrash, CrashBeforeWrite)
	}
	// Retire the current chain before anything can go wrong with the new
	// full: closeChain syncs its unsynced tail, so if this save dies midway
	// the chain it was about to supersede is durable to its tip.
	st.closeChain()
	data, err := Encode(s)
	if err != nil {
		return err
	}
	final := filepath.Join(st.dir, fmt.Sprintf(genFormat, s.Records))
	if st.crash(CrashTornWrite) {
		// Simulated non-atomic filesystem: half a snapshot lands under the
		// final name. Recovery must catch it by checksum.
		if err := writeFileSync(final, data[:len(data)/2]); err != nil {
			return err
		}
		return fmt.Errorf("%w: at %s", ErrInjectedCrash, CrashTornWrite)
	}
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		return err
	}
	if st.crash(CrashBeforeRename) {
		return fmt.Errorf("%w: at %s", ErrInjectedCrash, CrashBeforeRename)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("checkpoint: publishing snapshot: %w", err)
	}
	syncDir(st.dir)
	// The fresh full anchors a fresh, empty chain. A re-saved full at a
	// position an older incarnation also checkpointed may have left a stale
	// chain segment beside it; appending to it would splice two runs, so it
	// is removed up front.
	seg := st.segmentPath(s.Records)
	if err := os.Remove(seg); err != nil && !os.IsNotExist(err) {
		st.logf("checkpoint: removing stale delta segment %s: %v", seg, err)
	}
	crc := crc32.ChecksumIEEE(data)
	st.chain = chainState{
		open:        true,
		anchor:      s.Records,
		anchorCRC:   crc,
		lastCRC:     crc,
		lastRecords: s.Records,
		path:        seg,
	}
	st.lastSaveBytes = len(data)
	st.prune()
	if st.OnSave != nil {
		st.OnSave(Saved{Records: s.Records, BadRecords: s.BadRecords, Full: true})
	}
	return nil
}

// AppendDelta appends one delta frame to the chain rooted at the most
// recent full Save of this process. The common case costs one buffered
// write to an already-open file — no temp file, rename, directory fsync,
// prune, or even a per-frame sync — which is what makes tight checkpoint
// intervals affordable.
//
// Frames are deliberately NOT individually durable. A chain is synced when
// it is superseded by the next anchor full snapshot, on Close (graceful
// shutdown), or whenever the OS writes back — so a kill -9 between anchors
// may lose the unsynced frame suffix. That is safe by construction: each
// frame embeds its parent's position and checksum, so recovery keeps the
// longest valid prefix (at worst the bare anchor) and the pipeline replays
// the difference, re-publishing byte-identical windows. In the daemon the
// ingest WAL is truncated only up to the newest FULL snapshot, so every
// record a lost frame summarized is still replayable. Durability lives in
// anchors and the WAL; frames are a replay bound.
func (st *Store) AppendDelta(d *Delta) error {
	st.saves++
	if st.crash(CrashBeforeWrite) {
		return fmt.Errorf("%w: at %s", ErrInjectedCrash, CrashBeforeWrite)
	}
	if !st.chain.open {
		return fmt.Errorf("checkpoint: delta append without an anchor full snapshot")
	}
	if d == nil {
		return fmt.Errorf("checkpoint: nil delta")
	}
	if d.ParentRecords != st.chain.lastRecords {
		return fmt.Errorf("checkpoint: delta parent %d does not extend chain tip %d",
			d.ParentRecords, st.chain.lastRecords)
	}
	payload, err := EncodeDelta(d, st.chain.lastCRC)
	if err != nil {
		return err
	}
	buf := st.frameBuf[:0]
	created := st.chain.f == nil
	if created {
		buf = appendSegmentHeader(buf, st.chain.anchor, st.chain.anchorCRC)
	}
	frameStart := len(buf)
	buf = appendDeltaFrame(buf, payload)
	st.frameBuf = buf
	if created {
		f, err := os.OpenFile(st.chain.path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return fmt.Errorf("checkpoint: creating %s: %w", st.chain.path, err)
		}
		st.chain.f = f
	}
	if st.crash(CrashTornDelta) {
		// Simulated death mid-append: the header and half the frame reach
		// the disk. Recovery must keep the frames before it.
		torn := buf[:frameStart+(len(buf)-frameStart)/2]
		st.chain.f.Write(torn)
		datasync(st.chain.f)
		st.closeChain()
		return fmt.Errorf("%w: at %s", ErrInjectedCrash, CrashTornDelta)
	}
	if _, err := st.chain.f.Write(buf); err != nil {
		return fmt.Errorf("checkpoint: appending to %s: %w", st.chain.path, err)
	}
	st.chain.dirty = true
	if created {
		syncDir(st.dir)
	}
	st.chain.lastCRC = binary.LittleEndian.Uint32(buf[frameStart+4:])
	st.chain.lastRecords = d.Records
	st.chain.frames++
	st.lastSaveBytes = len(buf)
	if st.OnSave != nil {
		st.OnSave(Saved{Records: d.Records, BadRecords: d.BadRecords, Full: false})
	}
	return nil
}

// LastSaveBytes reports the bytes written by the most recent successful
// Save or AppendDelta (metrics).
func (st *Store) LastSaveBytes() int { return st.lastSaveBytes }

// ChainFrames reports the delta frames appended to the current chain since
// its anchor full snapshot (metrics; zero right after a full save).
func (st *Store) ChainFrames() int { return st.chain.frames }

// segmentPath returns the chain-segment path for the full snapshot at the
// given record position.
func (st *Store) segmentPath(records uint64) string {
	return filepath.Join(st.dir, fmt.Sprintf(deltaFormat, records))
}

// closeChain flushes any unsynced frames, releases the open segment file
// and forgets the chain; the next full Save starts a fresh one. The sync
// here is what makes a graceful shutdown's chain tip durable — frame
// appends themselves only buffer (see AppendDelta).
func (st *Store) closeChain() error {
	var err error
	if st.chain.f != nil {
		if st.chain.dirty {
			err = datasync(st.chain.f)
		}
		if cerr := st.chain.f.Close(); err == nil {
			err = cerr
		}
	}
	st.chain = chainState{}
	return err
}

// Close releases the open delta-segment file, if any, syncing its tail
// first. The store remains usable; the next full Save anchors a fresh
// chain.
func (st *Store) Close() error { return st.closeChain() }

// Wipe removes every generation and delta segment from the store directory
// — the reset a fresh (non-resuming) stream create performs on an inherited
// directory.
func (st *Store) Wipe() error {
	st.closeChain()
	for _, glob := range []string{genGlob, deltaGlob} {
		paths, err := filepath.Glob(filepath.Join(st.dir, glob))
		if err != nil {
			return fmt.Errorf("checkpoint: listing store: %w", err)
		}
		for _, p := range paths {
			if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("checkpoint: wiping %s: %w", p, err)
			}
		}
	}
	return nil
}

// AtomicWrite writes data to path with the store's crash discipline — temp
// file, fsync, rename, directory fsync — so a reader never observes a
// partially-written file under the final name, whatever instant the process
// dies. The multi-stream server uses it for its stream manifest.
func AtomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("checkpoint: publishing %s: %w", path, err)
	}
	syncDir(filepath.Dir(path))
	return nil
}

// writeFileSync writes data and syncs before closing, so a rename never
// publishes bytes the disk has not accepted. Data-only sync suffices: the
// file is still the unlinked temp name here, and the rename that makes it
// reachable is made durable by the directory fsync that follows it.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: creating %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: writing %s: %w", path, err)
	}
	if err := datasync(f); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: syncing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("checkpoint: closing %s: %w", path, err)
	}
	return nil
}

// syncDir best-effort fsyncs a directory so the rename itself is durable.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Generations returns the generation files present, oldest first (lexical
// = stream order). Orphaned temp files are excluded.
func (st *Store) Generations() ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(st.dir, genGlob))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: listing store: %w", err)
	}
	sort.Strings(paths)
	return paths, nil
}

// prune removes the oldest full generations beyond the retention limit,
// each with its chain segment, then sweeps orphan segments — a chain whose
// anchor full snapshot is gone can never be applied.
func (st *Store) prune() {
	gens, err := st.Generations()
	if err != nil {
		st.logf("checkpoint: pruning: %v", err)
		return
	}
	for len(gens) > st.keep {
		if err := os.Remove(gens[0]); err != nil {
			st.logf("checkpoint: pruning %s: %v", gens[0], err)
			return
		}
		if rec, ok := genRecords(gens[0], "ckpt-", ".bfck"); ok {
			if err := os.Remove(st.segmentPath(rec)); err != nil && !os.IsNotExist(err) {
				st.logf("checkpoint: pruning delta segment for %s: %v", gens[0], err)
			}
		}
		gens = gens[1:]
	}
	keep := make(map[uint64]bool, len(gens))
	for _, g := range gens {
		if rec, ok := genRecords(g, "ckpt-", ".bfck"); ok {
			keep[rec] = true
		}
	}
	segs, err := filepath.Glob(filepath.Join(st.dir, deltaGlob))
	if err != nil {
		st.logf("checkpoint: listing delta segments: %v", err)
		return
	}
	for _, seg := range segs {
		rec, ok := genRecords(seg, "delta-", ".bfdl")
		if !ok || keep[rec] {
			continue
		}
		if err := os.Remove(seg); err != nil && !os.IsNotExist(err) {
			st.logf("checkpoint: sweeping orphan delta segment %s: %v", seg, err)
		}
	}
}

// genRecords extracts the record position encoded in a generation or
// segment file name.
func genRecords(path, prefix, suffix string) (uint64, bool) {
	base := filepath.Base(path)
	if len(base) <= len(prefix)+len(suffix) ||
		base[:len(prefix)] != prefix || base[len(base)-len(suffix):] != suffix {
		return 0, false
	}
	var rec uint64
	for _, c := range base[len(prefix) : len(base)-len(suffix)] {
		if c < '0' || c > '9' {
			return 0, false
		}
		rec = rec*10 + uint64(c-'0')
	}
	return rec, true
}

// Load reads and validates one generation file.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading %s: %w", path, err)
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	return s, nil
}

// ChainDetail describes where a recovered snapshot came from: the anchor
// full generation, its stream position, and how many delta frames extended
// it. External truncation horizons (the server's WAL floor) must use the
// ANCHOR position, not the recovered snapshot's — replaying the chain again
// after another crash needs the anchor intact, and re-building lost delta
// progress needs the records after it.
type ChainDetail struct {
	// Path is the anchor full-snapshot generation file.
	Path string
	// AnchorRecords and AnchorBadRecords are the anchor's stream counters.
	AnchorRecords    uint64
	AnchorBadRecords uint64
	// Frames is how many delta frames were applied on top of the anchor.
	Frames int
	// LoadDur is the wall time spent reading and decoding the anchor full
	// snapshot; ChainApplyDur is the wall time spent reading the delta
	// segment and replaying its frames. Together they are the "restore the
	// state" half of a boot recovery (WAL replay is the other half), the
	// numbers that tune CheckpointFullEvery.
	LoadDur       time.Duration
	ChainApplyDur time.Duration
}

// Latest returns the newest recoverable snapshot and the path of its anchor
// generation. See LatestDetail.
func (st *Store) Latest() (*Snapshot, string, error) {
	s, det, err := st.LatestDetail()
	return s, det.Path, err
}

// LatestDetail returns the newest recoverable snapshot: the newest decodable
// full generation, extended by the longest valid frame prefix of its delta
// chain. Corrupt, torn or future-version fulls are skipped with a logged
// warning; chain damage degrades to the frames before it (or the bare
// anchor) — the fallbacks that bound the damage of a crash mid-write to one
// checkpoint interval of progress. A store with no usable snapshot returns
// (nil, ChainDetail{}, nil); only an unreadable directory is an error.
func (st *Store) LatestDetail() (*Snapshot, ChainDetail, error) {
	gens, err := st.Generations()
	if err != nil {
		return nil, ChainDetail{}, err
	}
	for i := len(gens) - 1; i >= 0; i-- {
		loadStart := time.Now()
		data, err := os.ReadFile(gens[i])
		if err != nil {
			st.logf("checkpoint: skipping unreadable generation %s: %v", gens[i], err)
			continue
		}
		s, err := Decode(data)
		if err != nil {
			st.logf("checkpoint: skipping unusable generation %s: %v", gens[i], err)
			continue
		}
		det := ChainDetail{
			Path:             gens[i],
			AnchorRecords:    s.Records,
			AnchorBadRecords: s.BadRecords,
			LoadDur:          time.Since(loadStart),
		}
		segPath := st.segmentPath(s.Records)
		applyStart := time.Now()
		if seg, err := os.ReadFile(segPath); err == nil {
			det.Frames = ApplyChain(s, seg, det.AnchorRecords, crc32.ChecksumIEEE(data),
				func(format string, args ...any) {
					st.logf("checkpoint: delta chain %s: "+format, append([]any{segPath}, args...)...)
				})
			det.ChainApplyDur = time.Since(applyStart)
		} else if !os.IsNotExist(err) {
			st.logf("checkpoint: reading delta segment %s: %v", segPath, err)
		}
		return s, det, nil
	}
	return nil, ChainDetail{}, nil
}
