package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Crash points of the write protocol, consulted through Store.CrashHook so
// the fault-injection suite can simulate a process death at each stage.
// They are part of the store's tested contract:
//
//   - CrashBeforeWrite: nothing has touched the disk; every existing
//     generation is intact.
//   - CrashBeforeRename: the temp file is fully written and synced but the
//     atomic rename never happened; recovery ignores the orphan.
//   - CrashTornWrite: simulates a filesystem without atomic rename — a
//     torn half-snapshot lands under the FINAL generation name; recovery
//     must detect it by checksum and fall back a generation.
const (
	CrashBeforeWrite  = "before-write"
	CrashBeforeRename = "before-rename"
	CrashTornWrite    = "torn-write"
)

// ErrInjectedCrash is returned by Save when the CrashHook fired: the test
// harness's stand-in for the process dying mid-protocol.
var ErrInjectedCrash = errors.New("checkpoint: injected crash")

// DefaultKeep is how many snapshot generations a store retains when the
// caller does not say otherwise.
const DefaultKeep = 3

// pattern matches generation files; the zero-padded record position makes
// lexical order equal stream order.
const (
	genFormat = "ckpt-%016d.bfck"
	genGlob   = "ckpt-*.bfck"
)

// Store manages a directory of checkpoint generations. Saves are atomic
// (temp file, fsync, rename, directory fsync) and pruned to the last keep
// generations; loads walk generations newest-first, skipping any snapshot
// that fails validation, so one corrupt file costs one generation of
// progress, never the run.
//
// Store is used from a single goroutine (the pipeline's emit stage), like
// the sources and sinks around it.
type Store struct {
	dir  string
	keep int

	// Logf, when non-nil, receives warnings the store absorbs — a corrupt
	// generation skipped during recovery, an unprunable stale file. The
	// CLI points it at stderr; tests capture it.
	Logf func(format string, args ...any)

	// CrashHook, when non-nil, is consulted with each crash point and the
	// 1-based save number; returning true simulates a process crash there
	// (see the CrashBefore*/CrashTorn constants). Test-only, like
	// core.Publisher's chunkHook.
	CrashHook func(point string, save int) bool

	// OnSave, when non-nil, is called after each successful Save with the
	// snapshot just persisted — the durability notification the multi-stream
	// server uses to prune its in-memory replay buffers. It runs on the
	// saving goroutine (the pipeline's emit stage), after the rename and
	// prune have completed.
	OnSave func(s *Snapshot)

	saves int
}

// NewStore opens (creating if needed) a checkpoint directory retaining the
// last keep generations; keep <= 0 selects DefaultKeep.
func NewStore(dir string, keep int) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: empty store directory")
	}
	if keep <= 0 {
		keep = DefaultKeep
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: creating store: %w", err)
	}
	return &Store{dir: dir, keep: keep}, nil
}

// Dir returns the store directory.
func (st *Store) Dir() string { return st.dir }

func (st *Store) logf(format string, args ...any) {
	if st.Logf != nil {
		st.Logf(format, args...)
	}
}

func (st *Store) crash(point string) bool {
	return st.CrashHook != nil && st.CrashHook(point, st.saves)
}

// Save atomically persists s as the generation named by its record
// position, then prunes generations beyond the retention limit. A snapshot
// is only visible under its final name once fully written and synced; a
// crash at any point of the protocol leaves every earlier generation
// intact.
func (st *Store) Save(s *Snapshot) error {
	st.saves++
	if st.crash(CrashBeforeWrite) {
		return fmt.Errorf("%w: at %s", ErrInjectedCrash, CrashBeforeWrite)
	}
	data, err := Encode(s)
	if err != nil {
		return err
	}
	final := filepath.Join(st.dir, fmt.Sprintf(genFormat, s.Records))
	if st.crash(CrashTornWrite) {
		// Simulated non-atomic filesystem: half a snapshot lands under the
		// final name. Recovery must catch it by checksum.
		if err := writeFileSync(final, data[:len(data)/2]); err != nil {
			return err
		}
		return fmt.Errorf("%w: at %s", ErrInjectedCrash, CrashTornWrite)
	}
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		return err
	}
	if st.crash(CrashBeforeRename) {
		return fmt.Errorf("%w: at %s", ErrInjectedCrash, CrashBeforeRename)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("checkpoint: publishing snapshot: %w", err)
	}
	syncDir(st.dir)
	st.prune()
	if st.OnSave != nil {
		st.OnSave(s)
	}
	return nil
}

// AtomicWrite writes data to path with the store's crash discipline — temp
// file, fsync, rename, directory fsync — so a reader never observes a
// partially-written file under the final name, whatever instant the process
// dies. The multi-stream server uses it for its stream manifest.
func AtomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("checkpoint: publishing %s: %w", path, err)
	}
	syncDir(filepath.Dir(path))
	return nil
}

// writeFileSync writes data and fsyncs before closing, so a rename never
// publishes bytes the disk has not accepted.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: creating %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: writing %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: syncing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("checkpoint: closing %s: %w", path, err)
	}
	return nil
}

// syncDir best-effort fsyncs a directory so the rename itself is durable.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Generations returns the generation files present, oldest first (lexical
// = stream order). Orphaned temp files are excluded.
func (st *Store) Generations() ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(st.dir, genGlob))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: listing store: %w", err)
	}
	sort.Strings(paths)
	return paths, nil
}

// prune removes the oldest generations beyond the retention limit.
func (st *Store) prune() {
	gens, err := st.Generations()
	if err != nil {
		st.logf("checkpoint: pruning: %v", err)
		return
	}
	for len(gens) > st.keep {
		if err := os.Remove(gens[0]); err != nil {
			st.logf("checkpoint: pruning %s: %v", gens[0], err)
			return
		}
		gens = gens[1:]
	}
}

// Load reads and validates one generation file.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading %s: %w", path, err)
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	return s, nil
}

// Latest returns the newest decodable snapshot and its path. Corrupt,
// torn or future-version generations are skipped with a logged warning —
// the previous-generation fallback that bounds the damage of a crash
// mid-write to one checkpoint interval of progress. A store with no usable
// snapshot returns (nil, "", nil); only an unreadable directory is an
// error.
func (st *Store) Latest() (*Snapshot, string, error) {
	gens, err := st.Generations()
	if err != nil {
		return nil, "", err
	}
	for i := len(gens) - 1; i >= 0; i-- {
		s, err := Load(gens[i])
		if err != nil {
			st.logf("checkpoint: skipping unusable generation %s: %v", gens[i], err)
			continue
		}
		return s, gens[i], nil
	}
	return nil, "", nil
}
