package checkpoint

// Lease files make per-stream checkpoint directories single-writer: a
// long-running server hosting many streams acquires a lease on each
// stream's directory before resuming or writing snapshots, so a
// delete/resume race (or two processes adopting the same stream) cannot
// interleave saves and corrupt the generation sequence.
//
// The lease is a small text file, `lease`, in the store directory:
//
//	<pid> <token> <owner>\n
//
// Acquisition is O_CREATE|O_EXCL — atomic on every filesystem the store
// itself supports. A lease whose pid is no longer alive is stale (the
// holding process was killed without releasing) and is stolen silently;
// a lease held by a live process — including this one — is refused with
// ErrLeaseHeld. Release removes the file only if it still carries this
// lease's token, so a release racing a steal never removes the new
// holder's lease.

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
)

// LeaseFileName is the lease file's name inside a checkpoint directory.
const LeaseFileName = "lease"

// ErrLeaseHeld reports that another live holder owns the directory.
var ErrLeaseHeld = errors.New("checkpoint: lease held")

// Lease is an acquired single-writer claim on a checkpoint directory.
type Lease struct {
	path  string
	token string
}

// AcquireLease claims dir for owner (a human-readable tag, e.g. the stream
// ID). It fails with an error wrapping ErrLeaseHeld when a live process
// holds the lease, and silently steals a stale lease left by a dead one.
// The directory is created if needed.
func AcquireLease(dir, owner string) (*Lease, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: empty lease directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: creating lease directory: %w", err)
	}
	path := filepath.Join(dir, LeaseFileName)
	tok := make([]byte, 8)
	if _, err := rand.Read(tok); err != nil {
		return nil, fmt.Errorf("checkpoint: lease token: %w", err)
	}
	l := &Lease{path: path, token: hex.EncodeToString(tok)}
	body := fmt.Sprintf("%d %s %s\n", os.Getpid(), l.token, owner)
	for attempt := 0; attempt < 2; attempt++ {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			if _, werr := f.WriteString(body); werr != nil {
				f.Close()
				os.Remove(path)
				return nil, fmt.Errorf("checkpoint: writing lease: %w", werr)
			}
			if cerr := f.Close(); cerr != nil {
				os.Remove(path)
				return nil, fmt.Errorf("checkpoint: writing lease: %w", cerr)
			}
			return l, nil
		}
		if !errors.Is(err, os.ErrExist) {
			return nil, fmt.Errorf("checkpoint: acquiring lease: %w", err)
		}
		pid, _, holder, rerr := readLease(path)
		if rerr == nil && pidAlive(pid) {
			return nil, fmt.Errorf("%w: %s held by pid %d (%s)", ErrLeaseHeld, dir, pid, holder)
		}
		// Unreadable or dead-holder lease: stale. Remove and retry once; a
		// concurrent acquirer winning the race surfaces as ErrExist again,
		// which the second O_EXCL attempt converts into ErrLeaseHeld.
		if rmErr := os.Remove(path); rmErr != nil && !errors.Is(rmErr, os.ErrNotExist) {
			return nil, fmt.Errorf("checkpoint: removing stale lease: %w", rmErr)
		}
	}
	return nil, fmt.Errorf("%w: %s (lost the steal race)", ErrLeaseHeld, dir)
}

// Release removes the lease file, provided it still carries this lease's
// token. Releasing twice is a no-op.
func (l *Lease) Release() error {
	if l == nil {
		return nil
	}
	_, token, _, err := readLease(l.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err == nil && token != l.token {
		return nil // stolen after our process was presumed dead; not ours to remove
	}
	if rmErr := os.Remove(l.path); rmErr != nil && !errors.Is(rmErr, os.ErrNotExist) {
		return fmt.Errorf("checkpoint: releasing lease: %w", rmErr)
	}
	return nil
}

// readLease parses a lease file into (pid, token, owner).
func readLease(path string) (int, string, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, "", "", err
	}
	fields := strings.Fields(string(data))
	if len(fields) < 2 {
		return 0, "", "", fmt.Errorf("checkpoint: malformed lease %q", string(data))
	}
	pid, err := strconv.Atoi(fields[0])
	if err != nil {
		return 0, "", "", fmt.Errorf("checkpoint: malformed lease pid %q", fields[0])
	}
	owner := ""
	if len(fields) > 2 {
		owner = fields[2]
	}
	return pid, fields[1], owner, nil
}

// pidAlive reports whether pid names a live process. Signal 0 probes
// without delivering; EPERM still proves liveness. The current process is
// always alive — a second in-process acquire is a real conflict, not a
// stale lease.
func pidAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	if pid == os.Getpid() {
		return true
	}
	proc, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = proc.Signal(syscall.Signal(0))
	return err == nil || errors.Is(err, syscall.EPERM)
}
