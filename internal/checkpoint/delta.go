package checkpoint

// Delta checkpointing (format version 2). A full snapshot re-serializes the
// entire republication cache and window buffer every interval, even though a
// one-window slide touches a handful of cache entries — that re-serialization,
// plus the create/fsync/rename/fsync dance of an atomic save, is the
// durability tax the delta format removes. Between full snapshots the store
// appends CRC-framed deltas to a chain segment file: each frame carries only
// what changed since its parent (records appended to the sliding window,
// publisher cache upserts/evictions, the window counter, RNG cursor and bias
// memo), and names its parent by record position AND checksum, so recovery
// can prove a frame extends exactly the state it is about to be applied to.
//
// On disk a chain lives beside its anchor full snapshot:
//
//	ckpt-%016d.bfck            the anchor (format version 1, unchanged)
//	delta-%016d.bfdl           the chain segment, same record position
//
// Segment layout:
//
//	magic "BFLYCKD2" | uint32 LE version | uint64 LE anchor records |
//	uint32 LE anchor CRC | frame*
//
// where the anchor CRC is CRC32(IEEE) over the anchor file's complete bytes,
// and each frame is:
//
//	uint32 LE payload len | uint32 LE CRC32(payload) | payload
//
// The payload opens with the parent's record position and CRC — the anchor's
// for the first frame, the previous frame's payload CRC after that — forming
// a hash chain: a segment copied beside the wrong full snapshot, or a frame
// spliced from another chain, fails the link check and applies nothing from
// that point on. A torn or bit-flipped tail degrades to the last consistent
// prefix, exactly like a WAL tail (internal/wal); the worst case loses the
// progress after the newest valid frame, never the chain before it.
import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/core"
	"repro/internal/itemset"
)

// DeltaVersion is the delta-chain wire-format version.
const DeltaVersion = 2

// deltaMagic identifies a delta-chain segment file.
const deltaMagic = "BFLYCKD2"

// SegHeaderLen is the size of a chain segment's header: magic + uint32
// version + uint64 anchor records + uint32 anchor CRC. Frames start at this
// offset.
const SegHeaderLen = len(deltaMagic) + 4 + 8 + 4

// Delta is one incremental checkpoint: the difference between two
// consecutive generation cuts. Positions and counters are absolute values
// (not differences); only the window buffer and the publisher cache travel
// as change sets.
type Delta struct {
	// ParentRecords is the Records position of the chain predecessor — the
	// anchor full snapshot or the previous delta.
	ParentRecords uint64
	// Records, BadRecords and Published are the cut's absolute counters,
	// with the same meaning as the Snapshot fields.
	Records    uint64
	BadRecords uint64
	Published  uint64
	// Appended holds the well-formed records pushed into the sliding window
	// since the parent cut, oldest first. When more than a full window
	// arrived in the interval, only the last WindowSize survive (the rest
	// slid straight through), so len(Appended) never exceeds WindowSize.
	Appended []itemset.Itemset
	// Publisher is the perturbation-state change set.
	Publisher core.PublisherDelta
}

// EncodeDelta serializes d as one frame payload. parentCRC is the checksum
// of the chain predecessor (the anchor file's bytes, or the previous frame's
// payload), embedded so recovery can verify the link.
func EncodeDelta(d *Delta, parentCRC uint32) ([]byte, error) {
	if d == nil {
		return nil, fmt.Errorf("checkpoint: nil delta")
	}
	if d.Records <= d.ParentRecords {
		return nil, fmt.Errorf("checkpoint: delta records %d not past parent %d", d.Records, d.ParentRecords)
	}
	p := &d.Publisher
	if len(p.Ladder) != len(p.Biases) {
		return nil, fmt.Errorf("checkpoint: delta with %d ladder rungs but %d biases", len(p.Ladder), len(p.Biases))
	}
	if !sortedStrictCache(p.Upserts) {
		return nil, fmt.Errorf("checkpoint: delta upserts not strictly sorted by key")
	}
	if !sort.StringsAreSorted(p.Evicted) || hasDupStrings(p.Evicted) {
		return nil, fmt.Errorf("checkpoint: delta evictions not strictly sorted")
	}
	var b []byte
	b = binary.AppendUvarint(b, d.ParentRecords)
	b = binary.LittleEndian.AppendUint32(b, parentCRC)
	b = binary.AppendUvarint(b, d.Records)
	b = binary.AppendUvarint(b, d.BadRecords)
	b = binary.AppendUvarint(b, d.Published)
	b = binary.AppendUvarint(b, uint64(len(d.Appended)))
	for _, rec := range d.Appended {
		b = appendItemset(b, rec)
	}
	b = binary.AppendVarint(b, int64(p.Window))
	b = binary.LittleEndian.AppendUint64(b, p.RNG)
	b = binary.AppendVarint(b, int64(p.BiasReuses))
	b = binary.AppendUvarint(b, uint64(len(p.Ladder)))
	for _, r := range p.Ladder {
		b = binary.AppendVarint(b, int64(r.Support))
		b = binary.AppendVarint(b, int64(r.Size))
	}
	b = binary.AppendUvarint(b, uint64(len(p.Biases)))
	for _, bias := range p.Biases {
		b = binary.AppendVarint(b, int64(bias))
	}
	b = binary.AppendUvarint(b, uint64(len(p.Upserts)))
	for _, e := range p.Upserts {
		b = appendString(b, e.Key)
		b = binary.AppendVarint(b, int64(e.TrueSupport))
		b = binary.AppendVarint(b, int64(e.Sanitized))
		b = binary.AppendVarint(b, int64(e.LastSeen))
	}
	b = binary.AppendUvarint(b, uint64(len(p.Evicted)))
	for _, k := range p.Evicted {
		b = appendString(b, k)
	}
	return b, nil
}

// DecodeDelta parses one frame payload, returning the delta and the embedded
// parent checksum. Like Decode it never panics: every malformation is an
// error wrapping ErrCorrupt. The decoded form is canonical — re-encoding it
// with the returned parent CRC reproduces the input bytes.
func DecodeDelta(payload []byte) (*Delta, uint32, error) {
	r := &reader{b: payload}
	d := &Delta{}
	var err error
	if d.ParentRecords, err = r.uvarint(); err != nil {
		return nil, 0, err
	}
	var parentCRC uint32
	if parentCRC, err = r.uint32(); err != nil {
		return nil, 0, err
	}
	if d.Records, err = r.uvarint(); err != nil {
		return nil, 0, err
	}
	if d.Records <= d.ParentRecords {
		return nil, 0, fmt.Errorf("%w: delta records %d not past parent %d", ErrCorrupt, d.Records, d.ParentRecords)
	}
	if d.BadRecords, err = r.uvarint(); err != nil {
		return nil, 0, err
	}
	if d.Published, err = r.uvarint(); err != nil {
		return nil, 0, err
	}
	n, err := r.count("appended records")
	if err != nil {
		return nil, 0, err
	}
	d.Appended = make([]itemset.Itemset, n)
	for i := range d.Appended {
		if d.Appended[i], err = r.itemset(); err != nil {
			return nil, 0, err
		}
	}
	p := &d.Publisher
	if p.Window, err = r.vint("publisher window counter"); err != nil {
		return nil, 0, err
	}
	if p.RNG, err = r.uint64(); err != nil {
		return nil, 0, err
	}
	if p.BiasReuses, err = r.vint("bias reuse counter"); err != nil {
		return nil, 0, err
	}
	rungs, err := r.count("ladder rungs")
	if err != nil {
		return nil, 0, err
	}
	p.Ladder = make([]core.LadderRung, rungs)
	for i := range p.Ladder {
		if p.Ladder[i].Support, err = r.vint("rung support"); err != nil {
			return nil, 0, err
		}
		if p.Ladder[i].Size, err = r.vint("rung size"); err != nil {
			return nil, 0, err
		}
	}
	biases, err := r.count("biases")
	if err != nil {
		return nil, 0, err
	}
	if biases != rungs {
		return nil, 0, fmt.Errorf("%w: %d biases for %d ladder rungs", ErrCorrupt, biases, rungs)
	}
	p.Biases = make([]int, biases)
	for i := range p.Biases {
		v, err := r.varint()
		if err != nil {
			return nil, 0, err
		}
		if v < -1<<31 || v > 1<<31-1 {
			return nil, 0, fmt.Errorf("%w: bias %d out of range", ErrCorrupt, v)
		}
		p.Biases[i] = int(v)
	}
	ups, err := r.count("cache upserts")
	if err != nil {
		return nil, 0, err
	}
	p.Upserts = make([]core.CacheEntry, ups)
	for i := range p.Upserts {
		e := &p.Upserts[i]
		if e.Key, err = r.str("upsert key"); err != nil {
			return nil, 0, err
		}
		if i > 0 && p.Upserts[i-1].Key >= e.Key {
			return nil, 0, fmt.Errorf("%w: upsert keys not strictly sorted", ErrCorrupt)
		}
		if e.TrueSupport, err = r.vint("upsert true support"); err != nil {
			return nil, 0, err
		}
		v, err := r.varint()
		if err != nil {
			return nil, 0, err
		}
		if v < -1<<31 || v > 1<<31-1 {
			return nil, 0, fmt.Errorf("%w: sanitized support %d out of range", ErrCorrupt, v)
		}
		e.Sanitized = int(v)
		if e.LastSeen, err = r.vint("upsert last-seen window"); err != nil {
			return nil, 0, err
		}
	}
	ev, err := r.count("cache evictions")
	if err != nil {
		return nil, 0, err
	}
	p.Evicted = make([]string, ev)
	for i := range p.Evicted {
		if p.Evicted[i], err = r.str("evicted key"); err != nil {
			return nil, 0, err
		}
		if i > 0 && p.Evicted[i-1] >= p.Evicted[i] {
			return nil, 0, fmt.Errorf("%w: evicted keys not strictly sorted", ErrCorrupt)
		}
	}
	if r.remaining() != 0 {
		return nil, 0, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, r.remaining())
	}
	return d, parentCRC, nil
}

// ApplyDelta advances s by one delta: slides the window buffer, bumps the
// counters, and merges the publisher change set (evictions first, then
// upserts). It validates everything before mutating anything, so a failed
// apply leaves s exactly as it was — the chain replay relies on that to
// degrade to a consistent prefix.
func ApplyDelta(s *Snapshot, d *Delta) error {
	if s == nil || d == nil {
		return fmt.Errorf("checkpoint: nil snapshot or delta")
	}
	if d.ParentRecords != s.Records {
		return fmt.Errorf("%w: delta parent %d does not extend snapshot at %d", ErrCorrupt, d.ParentRecords, s.Records)
	}
	if d.Records <= s.Records || d.BadRecords < s.BadRecords || d.Published <= s.Published {
		return fmt.Errorf("%w: delta counters regress (records %d<=%d, bad %d<%d, or published %d<=%d)",
			ErrCorrupt, d.Records, s.Records, d.BadRecords, s.BadRecords, d.Published, s.Published)
	}
	w := s.Meta.WindowSize
	if len(d.Appended) > w {
		return fmt.Errorf("%w: %d appended records exceed window size %d", ErrCorrupt, len(d.Appended), w)
	}
	grew := d.Records - s.Records
	if grew < uint64(len(d.Appended)) || (grew > uint64(len(d.Appended)) && len(d.Appended) != w) {
		return fmt.Errorf("%w: %d appended records for a %d-record advance of window size %d",
			ErrCorrupt, len(d.Appended), grew, w)
	}
	p := &d.Publisher
	if len(p.Ladder) != len(p.Biases) {
		return fmt.Errorf("%w: %d biases for %d ladder rungs", ErrCorrupt, len(p.Biases), len(p.Ladder))
	}
	if p.Window < s.Publisher.Window {
		return fmt.Errorf("%w: publisher window counter regresses %d -> %d", ErrCorrupt, s.Publisher.Window, p.Window)
	}

	// All validated; commit.
	s.Records, s.BadRecords, s.Published = d.Records, d.BadRecords, d.Published
	s.Window = append(s.Window, d.Appended...)
	if len(s.Window) > w {
		n := copy(s.Window, s.Window[len(s.Window)-w:])
		s.Window = s.Window[:n]
	}
	ps := &s.Publisher
	ps.Window = p.Window
	ps.RNG = p.RNG
	ps.BiasReuses = p.BiasReuses
	ps.Ladder = append([]core.LadderRung(nil), p.Ladder...)
	ps.Biases = append([]int(nil), p.Biases...)
	if len(p.Upserts) > 0 || len(p.Evicted) > 0 {
		merged := make(map[string]core.CacheEntry, len(ps.Cache)+len(p.Upserts))
		for _, e := range ps.Cache {
			merged[e.Key] = e
		}
		for _, k := range p.Evicted {
			delete(merged, k)
		}
		for _, e := range p.Upserts {
			merged[e.Key] = e
		}
		ps.Cache = make([]core.CacheEntry, 0, len(merged))
		for _, e := range merged {
			ps.Cache = append(ps.Cache, e)
		}
		sort.Slice(ps.Cache, func(i, j int) bool { return ps.Cache[i].Key < ps.Cache[j].Key })
	}
	return nil
}

// appendSegmentHeader appends the segment header binding a chain to its
// anchor full snapshot.
func appendSegmentHeader(b []byte, anchorRecords uint64, anchorCRC uint32) []byte {
	b = append(b, deltaMagic...)
	b = binary.LittleEndian.AppendUint32(b, DeltaVersion)
	b = binary.LittleEndian.AppendUint64(b, anchorRecords)
	return binary.LittleEndian.AppendUint32(b, anchorCRC)
}

// appendDeltaFrame appends one CRC-framed payload.
func appendDeltaFrame(b, payload []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
	return append(b, payload...)
}

// ApplyChain replays a delta segment onto its anchor snapshot s, whose
// record position must be anchorRecords and whose file bytes must hash to
// anchorCRC. It returns the number of frames applied. Damage — a torn tail,
// a corrupt or truncated frame, a frame whose parent link does not match the
// state it would extend — stops the replay at the last consistent prefix;
// the reason is reported through warn (may be nil) and s reflects every
// frame before the damage, never a partial frame. A header that does not
// bind to the anchor applies nothing.
//
// ApplyChain never panics, whatever the segment bytes; the delta fuzz target
// drives it with arbitrary input.
func ApplyChain(s *Snapshot, seg []byte, anchorRecords uint64, anchorCRC uint32, warn func(format string, args ...any)) int {
	if warn == nil {
		warn = func(string, ...any) {}
	}
	if s == nil {
		return 0
	}
	if len(seg) < SegHeaderLen {
		warn("segment shorter than its %d-byte header (%d bytes)", SegHeaderLen, len(seg))
		return 0
	}
	if string(seg[:len(deltaMagic)]) != deltaMagic {
		warn("bad segment magic")
		return 0
	}
	if v := binary.LittleEndian.Uint32(seg[len(deltaMagic):]); v != DeltaVersion {
		warn("segment version %d, this build reads %d", v, DeltaVersion)
		return 0
	}
	hdrRecords := binary.LittleEndian.Uint64(seg[len(deltaMagic)+4:])
	hdrCRC := binary.LittleEndian.Uint32(seg[len(deltaMagic)+12:])
	if hdrRecords != anchorRecords || hdrCRC != anchorCRC {
		warn("segment anchored at records=%d crc=%08x, full snapshot is records=%d crc=%08x — cross-linked chain ignored",
			hdrRecords, hdrCRC, anchorRecords, anchorCRC)
		return 0
	}
	rest := seg[SegHeaderLen:]
	lastCRC := anchorCRC
	applied := 0
	for len(rest) > 0 {
		if len(rest) < 8 {
			warn("torn frame header after %d applied frame(s)", applied)
			return applied
		}
		n := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		if uint64(n) > uint64(len(rest)-8) {
			warn("torn frame after %d applied frame(s): %d-byte payload, %d bytes left", applied, n, len(rest)-8)
			return applied
		}
		payload := rest[8 : 8+n]
		if got := crc32.ChecksumIEEE(payload); got != sum {
			warn("frame %d checksum %08x, want %08x; keeping %d-frame prefix", applied+1, got, sum, applied)
			return applied
		}
		d, parentCRC, err := DecodeDelta(payload)
		if err != nil {
			warn("frame %d undecodable (%v); keeping %d-frame prefix", applied+1, err, applied)
			return applied
		}
		if parentCRC != lastCRC || d.ParentRecords != s.Records {
			warn("frame %d parent link (records=%d crc=%08x) does not extend chain tip (records=%d crc=%08x); keeping %d-frame prefix",
				applied+1, d.ParentRecords, parentCRC, s.Records, lastCRC, applied)
			return applied
		}
		if err := ApplyDelta(s, d); err != nil {
			warn("frame %d inconsistent (%v); keeping %d-frame prefix", applied+1, err, applied)
			return applied
		}
		lastCRC = sum
		applied++
		rest = rest[8+n:]
	}
	return applied
}

func sortedStrictCache(es []core.CacheEntry) bool {
	for i := 1; i < len(es); i++ {
		if es[i-1].Key >= es[i].Key {
			return false
		}
	}
	return true
}

func hasDupStrings(ss []string) bool {
	for i := 1; i < len(ss); i++ {
		if ss[i-1] == ss[i] {
			return true
		}
	}
	return false
}
