// Package suppress implements the detecting-then-removing baseline the
// paper rejects in §I: find every inference breach in the mining output and
// delete published itemsets until none remains. It exists so the evaluation
// can quantify the paper's two arguments against the strategy — the
// detection cost (repeated breach analysis over the whole output) and the
// utility loss (entire itemsets disappear from the release, instead of every
// itemset surviving with bounded noise).
//
// Only intra-window breaches are handled, which UNDERSTATES the baseline's
// true cost: closing inter-window breaches would additionally require
// bookkeeping of all history output (the paper's second §I objection).
package suppress

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/itemset"
	"repro/internal/mining"
)

// Report describes one suppression run.
type Report struct {
	// Kept is the surviving output: no intra-window breach is derivable
	// from it (at the attack options used).
	Kept *mining.Result
	// Suppressed lists the removed itemsets in removal order.
	Suppressed []itemset.Itemset
	// Rounds is the number of detect→remove iterations.
	Rounds int
}

// maxRounds bounds the iteration; every round removes at least one itemset,
// so len(output) rounds always suffice — the bound only guards bugs.
const maxRounds = 10000

// Sanitize removes published itemsets until the intra-window attack finds
// no hard-vulnerable pattern (0 < support <= opts.VulnSupport). Per breach,
// the published itemset with the SMALLEST support in the enabling lattice
// X_I^J is removed: it is the most specific (least statistically
// significant) piece of the derivation, mirroring the suppression heuristics
// of the inference-control literature.
func Sanitize(res *mining.Result, windowSize int, opts attack.Options) (*Report, error) {
	if res == nil {
		return nil, fmt.Errorf("suppress: nil mining result")
	}
	if opts.VulnSupport <= 0 {
		return nil, fmt.Errorf("suppress: VulnSupport must be positive, got %d", opts.VulnSupport)
	}
	kept := make([]mining.FrequentItemset, len(res.Itemsets))
	copy(kept, res.Itemsets)

	rep := &Report{}
	for rep.Rounds = 1; rep.Rounds <= maxRounds; rep.Rounds++ {
		view := viewOf(kept, windowSize)
		breaches := attack.IntraWindow(view, opts)
		if len(breaches) == 0 {
			rep.Kept = mining.NewResult(res.MinSupport, kept)
			return rep, nil
		}
		// Choose victims for this round: one per breach, deduplicated.
		victims := map[string]itemset.Itemset{}
		for _, b := range breaches {
			if v, ok := victim(b, kept, view); ok {
				victims[v.Key()] = v
			}
		}
		if len(victims) == 0 {
			// Every breach rests only on pinned (unpublished) values or the
			// window size; removing output cannot help further. Accept the
			// residue — a documented weakness of the baseline.
			rep.Kept = mining.NewResult(res.MinSupport, kept)
			return rep, nil
		}
		next := kept[:0]
		for _, fi := range kept {
			if v, hit := victims[fi.Set.Key()]; hit {
				rep.Suppressed = append(rep.Suppressed, v)
				continue
			}
			next = append(next, fi)
		}
		kept = next
	}
	return nil, fmt.Errorf("suppress: did not converge in %d rounds", maxRounds)
}

// victim picks the published itemset to remove for one breach: the lattice
// member of X_I^J with the smallest support still in the output.
func victim(b attack.Inference, kept []mining.FrequentItemset, view *attack.View) (itemset.Itemset, bool) {
	var best itemset.Itemset
	bestSup := -1
	// Enumerate the lattice members by walking J\I subsets via Subsets on
	// the difference, mirroring lattice.Enumerate without the import cycle
	// risk (attack already depends on lattice).
	free := b.J.Minus(b.I)
	free.Subsets(func(sub itemset.Itemset) bool {
		x := b.I.Union(sub)
		if x.Empty() {
			return true
		}
		sup, published := view.Support(x)
		if !published {
			return true
		}
		// Only published (not pinned-from-bounds) members can be removed;
		// check against the actual kept list.
		for _, fi := range kept {
			if fi.Set.Equal(x) {
				if bestSup == -1 || sup < bestSup {
					best = x
					bestSup = sup
				}
				break
			}
		}
		return true
	})
	return best, bestSup != -1
}

func viewOf(kept []mining.FrequentItemset, windowSize int) *attack.View {
	sets := make([]itemset.Itemset, len(kept))
	sups := make([]int, len(kept))
	for i, fi := range kept {
		sets[i] = fi.Set
		sups[i] = fi.Support
	}
	return attack.NewView(windowSize, sets, sups)
}
