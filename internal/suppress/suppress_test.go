package suppress

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/data"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/paperex"
)

func TestSanitizeValidation(t *testing.T) {
	if _, err := Sanitize(nil, 10, attack.Options{VulnSupport: 1}); err == nil {
		t.Error("nil result accepted")
	}
	res := mining.NewResult(2, nil)
	if _, err := Sanitize(res, 10, attack.Options{}); err == nil {
		t.Error("zero K accepted")
	}
}

func TestSanitizeNoBreachesIsIdentity(t *testing.T) {
	// Ds(12,8) at C=4 has no intra-window breaches at K=1.
	db := paperex.Window12()
	res, err := mining.Eclat(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Sanitize(res, db.Len(), attack.Options{VulnSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Suppressed) != 0 {
		t.Errorf("suppressed %v from breach-free output", rep.Suppressed)
	}
	if rep.Kept.Len() != res.Len() {
		t.Errorf("kept %d of %d itemsets", rep.Kept.Len(), res.Len())
	}
}

func TestSanitizeRemovesBreaches(t *testing.T) {
	// C=3 publishes abc's full lattice: the c¬a¬b breach is derivable.
	db := paperex.Window12()
	res, err := mining.Eclat(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts := attack.Options{VulnSupport: 1}
	before := attack.IntraWindow(viewOf(res.Itemsets, db.Len()), opts)
	if len(before) == 0 {
		t.Fatal("fixture has no breaches to remove")
	}
	rep, err := Sanitize(res, db.Len(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Suppressed) == 0 {
		t.Fatal("nothing suppressed despite breaches")
	}
	after := attack.IntraWindow(viewOf(rep.Kept.Itemsets, db.Len()), opts)
	if len(after) != 0 {
		t.Errorf("%d breaches survive suppression: %v", len(after), after)
	}
	if rep.Kept.Len()+len(rep.Suppressed) != res.Len() {
		t.Errorf("itemset accounting broken: %d + %d != %d",
			rep.Kept.Len(), len(rep.Suppressed), res.Len())
	}
}

// The cost comparison the paper makes in §I: on a realistic stream window,
// suppression loses entire itemsets where Butterfly would keep all of them
// within ε error.
func TestSuppressionLosesUtility(t *testing.T) {
	gen := data.WebViewLike(13)
	db := itemset.NewDatabase(gen.Generate(800))
	res, err := mining.Eclat(db, 16)
	if err != nil {
		t.Fatal(err)
	}
	opts := attack.Options{VulnSupport: 4}
	if len(attack.IntraWindow(viewOf(res.Itemsets, db.Len()), opts)) == 0 {
		t.Skip("no breaches in this window")
	}
	rep, err := Sanitize(res, db.Len(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Suppressed) == 0 {
		t.Fatal("breaches existed but nothing was suppressed")
	}
	t.Logf("suppression removed %d of %d itemsets in %d rounds",
		len(rep.Suppressed), res.Len(), rep.Rounds)
}

// Suppression must terminate on pathological all-breach outputs.
func TestSanitizeConvergesOnDenseBreaches(t *testing.T) {
	// Every record unique: every pair-lattice derives support-1 patterns.
	var recs []itemset.Itemset
	for i := 0; i < 6; i++ {
		recs = append(recs, itemset.New(0, itemset.Item(i+1)))
	}
	db := itemset.NewDatabase(recs)
	res, err := mining.Eclat(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Sanitize(res, db.Len(), attack.Options{VulnSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	after := attack.IntraWindow(viewOf(rep.Kept.Itemsets, db.Len()), attack.Options{VulnSupport: 1})
	if len(after) != 0 {
		t.Errorf("%d breaches survive", len(after))
	}
}
