package lattice

import (
	"testing"
	"testing/quick"

	"repro/internal/itemset"
	"repro/internal/paperex"
	"repro/internal/rng"
)

// dbLookup exposes the true supports of a database as a SupportLookup.
func dbLookup(db *itemset.Database) SupportLookup {
	return func(s itemset.Itemset) (int, bool) {
		return db.Support(s), true
	}
}

func TestEnumerateLattice(t *testing.T) {
	i := itemset.New(2)       // c
	j := itemset.New(0, 1, 2) // abc
	var got []string
	err := Enumerate(i, j, func(x itemset.Itemset, dist int) bool {
		got = append(got, x.String())
		if dist != x.Len()-1 {
			t.Errorf("dist for %v = %d", x, dist)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("lattice X_c^abc has %d nodes, want 4: %v", len(got), got)
	}
}

func TestEnumerateRejectsNonSubset(t *testing.T) {
	if err := Enumerate(itemset.New(9), itemset.New(1, 2), func(itemset.Itemset, int) bool { return true }); err == nil {
		t.Fatal("Enumerate accepted I ⊄ J")
	}
}

func TestEnumerateRejectsHugeLattice(t *testing.T) {
	items := make([]itemset.Item, 25)
	for i := range items {
		items[i] = itemset.Item(i)
	}
	if err := Enumerate(itemset.New(), itemset.New(items...), func(itemset.Itemset, int) bool { return true }); err == nil {
		t.Fatal("Enumerate accepted 25-item free set")
	}
}

// Example 3 of the paper: with the true supports of X_c^abc in Ds(12,8),
// the pattern c·¬a·¬b derives to support 1.
func TestDerivePatternExample3(t *testing.T) {
	db := paperex.Window12()
	i := itemset.New(paperex.C)
	j := itemset.New(paperex.A, paperex.B, paperex.C)
	got, ok, err := DerivePattern(i, j, dbLookup(db))
	if err != nil || !ok {
		t.Fatalf("derive failed: ok=%v err=%v", ok, err)
	}
	if got != 1 {
		t.Errorf("derived support = %d, want 1", got)
	}
	p := PatternOf(i, j)
	if truth := db.PatternSupport(p); truth != got {
		t.Errorf("derived %d but ground truth is %d", got, truth)
	}
}

func TestDerivePatternIncomplete(t *testing.T) {
	// Hide abc from the lookup: derivation must report not-ok.
	db := paperex.Window12()
	abc := itemset.New(paperex.A, paperex.B, paperex.C)
	lookup := func(s itemset.Itemset) (int, bool) {
		if s.Equal(abc) {
			return 0, false
		}
		return db.Support(s), true
	}
	_, ok, err := DerivePattern(itemset.New(paperex.C), abc, lookup)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("derivation claimed success with a missing lattice member")
	}
}

// Property: inclusion–exclusion over true supports always equals the true
// pattern support, for random databases and random I ⊂ J.
func TestDerivePatternMatchesGroundTruth(t *testing.T) {
	src := rng.New(55)
	f := func(seed uint32) bool {
		s := rng.New(uint64(seed))
		// Random database over 6 items.
		recs := make([]itemset.Itemset, 20+s.Intn(30))
		for r := range recs {
			n := 1 + s.Intn(4)
			items := make([]itemset.Item, 0, n)
			for k := 0; k < n; k++ {
				items = append(items, itemset.Item(s.Intn(6)))
			}
			recs[r] = itemset.New(items...)
		}
		db := itemset.NewDatabase(recs)
		// Random J (2..4 items), random proper subset I.
		jn := 2 + s.Intn(3)
		var jitems []itemset.Item
		for k := 0; k < jn; k++ {
			jitems = append(jitems, itemset.Item(s.Intn(6)))
		}
		j := itemset.New(jitems...)
		if j.Len() < 2 {
			return true
		}
		i := j.Without(j.At(s.Intn(j.Len())))
		got, ok, err := DerivePattern(i, j, dbLookup(db))
		if err != nil || !ok {
			return false
		}
		return got == db.PatternSupport(PatternOf(i, j))
	}
	cfg := &quick.Config{MaxCount: 100, Rand: nil}
	_ = src
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Example 4 of the paper: given c, ac, bc (but not abc) in Ds(12,8), the
// bounds on T(abc) are [2,5].
func TestBoundsExample4(t *testing.T) {
	db := paperex.Window12()
	published := map[string]int{
		itemset.New(paperex.C).Key():            db.Support(itemset.New(paperex.C)),
		itemset.New(paperex.A, paperex.C).Key(): db.Support(itemset.New(paperex.A, paperex.C)),
		itemset.New(paperex.B, paperex.C).Key(): db.Support(itemset.New(paperex.B, paperex.C)),
	}
	iv, err := Bounds(itemset.New(paperex.A, paperex.B, paperex.C), MapLookup(published, 8), 8)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo != 2 || iv.Hi != 5 {
		t.Errorf("bounds = %v, want [2,5]", iv)
	}
	if iv.Tight() {
		t.Error("bounds should not be tight in Example 4")
	}
}

// Property: with full subset information the bounds always contain the true
// support. This is the soundness property the inter-window attack leans on.
func TestBoundsContainTruth(t *testing.T) {
	f := func(seed uint32) bool {
		s := rng.New(uint64(seed))
		recs := make([]itemset.Itemset, 15+s.Intn(25))
		for r := range recs {
			n := 1 + s.Intn(4)
			items := make([]itemset.Item, 0, n)
			for k := 0; k < n; k++ {
				items = append(items, itemset.Item(s.Intn(5)))
			}
			recs[r] = itemset.New(items...)
		}
		db := itemset.NewDatabase(recs)
		jn := 2 + s.Intn(2)
		var jitems []itemset.Item
		for k := 0; k < jn; k++ {
			jitems = append(jitems, itemset.Item(s.Intn(5)))
		}
		j := itemset.New(jitems...)
		if j.Len() < 2 {
			return true
		}
		// Lookup exposes everything except J itself.
		lookup := func(x itemset.Itemset) (int, bool) {
			if x.Equal(j) {
				return 0, false
			}
			return db.Support(x), true
		}
		iv, err := Bounds(j, lookup, db.Len())
		if err != nil {
			return false
		}
		truth := db.Support(j)
		return iv.Lo <= truth && truth <= iv.Hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// With ALL proper subsets of a 2-itemset published, the bounds include
// max(0, T(a)+T(b)-N) and min(T(a),T(b)) — verify a hand case.
func TestBoundsPairHandCase(t *testing.T) {
	// N=10, T(a)=7, T(b)=6, T(ab)=4.
	recs := []itemset.Itemset{}
	for i := 0; i < 4; i++ {
		recs = append(recs, itemset.New(0, 1))
	}
	for i := 0; i < 3; i++ {
		recs = append(recs, itemset.New(0))
	}
	for i := 0; i < 2; i++ {
		recs = append(recs, itemset.New(1))
	}
	recs = append(recs, itemset.New(2))
	db := itemset.NewDatabase(recs)
	lookup := func(x itemset.Itemset) (int, bool) {
		if x.Equal(itemset.New(0, 1)) {
			return 0, false
		}
		return db.Support(x), true
	}
	iv, err := Bounds(itemset.New(0, 1), lookup, db.Len())
	if err != nil {
		t.Fatal(err)
	}
	// Lower: T(a)+T(b)-N = 3; upper: min(T(a),T(b)) = 6.
	if iv.Lo != 3 || iv.Hi != 6 {
		t.Errorf("bounds = %v, want [3,6]", iv)
	}
}

func TestIntervalOps(t *testing.T) {
	a := Interval{2, 5}
	b := Interval{4, 9}
	if got := a.Intersect(b); got.Lo != 4 || got.Hi != 5 {
		t.Errorf("Intersect = %v", got)
	}
	if !(Interval{3, 3}).Tight() {
		t.Error("degenerate interval not Tight")
	}
	if (Interval{3, 4}).Tight() {
		t.Error("wide interval reported Tight")
	}
	if !(Interval{5, 4}).Empty() {
		t.Error("inverted interval not Empty")
	}
	if got := a.Shift(-1, 1); got.Lo != 1 || got.Hi != 6 {
		t.Errorf("Shift = %v", got)
	}
	if got := a.String(); got != "[2,5]" {
		t.Errorf("String = %q", got)
	}
}

func TestDerivePatternInterval(t *testing.T) {
	db := paperex.Window12()
	j := itemset.New(paperex.A, paperex.B, paperex.C)
	i := itemset.New(paperex.C)
	// abc unknown but bounded [2,5]; everything else exact.
	resolve := func(x itemset.Itemset) (Interval, bool) {
		if x.Equal(j) {
			return Interval{2, 5}, true
		}
		v := db.Support(x)
		return Interval{v, v}, true
	}
	iv, ok, err := DerivePatternInterval(i, j, resolve)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	// T(c¬a¬b) = T(c)-T(ac)-T(bc)+T(abc) = 8-5-5+[2,5] = [0,3].
	if iv.Lo != 0 || iv.Hi != 3 {
		t.Errorf("interval = %v, want [0,3]", iv)
	}
	// Truth (1) inside.
	truth := db.PatternSupport(PatternOf(i, j))
	if truth < iv.Lo || truth > iv.Hi {
		t.Errorf("truth %d outside %v", truth, iv)
	}
}

func TestDerivePatternIntervalIncomplete(t *testing.T) {
	_, ok, err := DerivePatternInterval(itemset.New(1), itemset.New(1, 2),
		func(x itemset.Itemset) (Interval, bool) { return Interval{}, false })
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("interval derivation claimed success with no data")
	}
}

func TestMapLookup(t *testing.T) {
	m := map[string]int{itemset.New(1).Key(): 7}
	l := MapLookup(m, 42)
	if v, ok := l(itemset.New()); !ok || v != 42 {
		t.Errorf("empty itemset = %d,%v", v, ok)
	}
	if v, ok := l(itemset.New(1)); !ok || v != 7 {
		t.Errorf("{1} = %d,%v", v, ok)
	}
	if _, ok := l(itemset.New(2)); ok {
		t.Error("absent itemset resolved")
	}
}
