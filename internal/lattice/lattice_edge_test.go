package lattice

import (
	"testing"

	"repro/internal/itemset"
	"repro/internal/rng"
)

// Bounds on a singleton: only I = ∅ applies, giving [T(∅)-Σ... , min(...)];
// with nothing else published the result is the trivial window bounds.
func TestBoundsSingletonTrivial(t *testing.T) {
	lookup := func(s itemset.Itemset) (int, bool) {
		if s.Empty() {
			return 10, true
		}
		return 0, false
	}
	iv, err := Bounds(itemset.New(1), lookup, 10)
	if err != nil {
		t.Fatal(err)
	}
	// I=∅, |J\I|=1 odd: T(J) <= T(∅) = 10. Lower stays 0.
	if iv.Lo != 0 || iv.Hi != 10 {
		t.Errorf("bounds = %v, want [0,10]", iv)
	}
}

// DerivePattern with I == J degenerates to the itemset's own support.
func TestDerivePatternSelf(t *testing.T) {
	j := itemset.New(1, 2)
	lookup := func(s itemset.Itemset) (int, bool) {
		if s.Equal(j) {
			return 7, true
		}
		return 0, false
	}
	got, ok, err := DerivePattern(j, j, lookup)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if got != 7 {
		t.Errorf("T(J(∅)) = %d, want 7", got)
	}
}

// Sanitized (even negative) supports must not break the arithmetic: the
// derivation is a plain signed sum.
func TestDerivePatternWithNegativeValues(t *testing.T) {
	lookup := func(s itemset.Itemset) (int, bool) {
		switch s.Len() {
		case 1:
			return -2, true
		case 2:
			return 3, true
		default:
			return 5, true
		}
	}
	got, ok, err := DerivePattern(itemset.New(1), itemset.New(1, 2), lookup)
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	// T(1¬2) = T(1) - T(12) = -2 - 3 = -5. Nonsense as a support, but the
	// adversary's arithmetic over sanitized values must be exactly this.
	if got != -5 {
		t.Errorf("derived %d, want -5", got)
	}
}

// Bounds must never return Lo > Hi on consistent (true-support) input.
func TestBoundsNeverInvertedOnTruth(t *testing.T) {
	src := rng.New(83)
	for trial := 0; trial < 60; trial++ {
		n := 10 + src.Intn(20)
		recs := make([]itemset.Itemset, n)
		for i := range recs {
			var items []itemset.Item
			for b := 0; b < 4; b++ {
				if src.Intn(2) == 1 {
					items = append(items, itemset.Item(b))
				}
			}
			recs[i] = itemset.New(items...)
		}
		db := itemset.NewDatabase(recs)
		j := itemset.New(0, 1, 2, 3)
		lookup := func(x itemset.Itemset) (int, bool) {
			if x.Equal(j) {
				return 0, false
			}
			return db.Support(x), true
		}
		iv, err := Bounds(j, lookup, n)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Empty() {
			t.Fatalf("trial %d: inverted bounds %v on consistent input", trial, iv)
		}
	}
}

// The tightest-I property: adding more published subsets can only narrow
// (never widen) the bounds.
func TestBoundsMonotoneInInformation(t *testing.T) {
	src := rng.New(89)
	for trial := 0; trial < 30; trial++ {
		n := 12 + src.Intn(12)
		recs := make([]itemset.Itemset, n)
		for i := range recs {
			var items []itemset.Item
			for b := 0; b < 3; b++ {
				if src.Intn(2) == 1 {
					items = append(items, itemset.Item(b))
				}
			}
			recs[i] = itemset.New(items...)
		}
		db := itemset.NewDatabase(recs)
		j := itemset.New(0, 1, 2)

		// Partial view: only singletons. Full view: all proper subsets.
		partial := func(x itemset.Itemset) (int, bool) {
			if x.Empty() || x.Len() == 1 {
				return db.Support(x), true
			}
			return 0, false
		}
		full := func(x itemset.Itemset) (int, bool) {
			if x.Equal(j) {
				return 0, false
			}
			return db.Support(x), true
		}
		ivPartial, err := Bounds(j, partial, n)
		if err != nil {
			t.Fatal(err)
		}
		ivFull, err := Bounds(j, full, n)
		if err != nil {
			t.Fatal(err)
		}
		if ivFull.Lo < ivPartial.Lo || ivFull.Hi > ivPartial.Hi {
			t.Fatalf("trial %d: more information widened bounds: %v -> %v",
				trial, ivPartial, ivFull)
		}
	}
}

func TestPatternOf(t *testing.T) {
	p := PatternOf(itemset.New(1), itemset.New(1, 2, 3))
	if !p.Positive.Equal(itemset.New(1)) || !p.Negative.Equal(itemset.New(2, 3)) {
		t.Errorf("PatternOf = %v", p)
	}
}
