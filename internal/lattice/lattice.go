// Package lattice implements the attack techniques of §IV of the Butterfly
// paper: the itemset lattice X_I^J = {X : I ⊆ X ⊆ J}, derivation of
// generalized-pattern supports by the inclusion–exclusion principle, and
// non-derivable-itemset style support bounds (Calders & Goethals) that let
// an adversary complete missing supports from published ones.
package lattice

import (
	"fmt"

	"repro/internal/itemset"
)

// SupportLookup resolves the (believed) support of an itemset, returning
// ok=false when the adversary has no value for it. The empty itemset should
// resolve to the database/window size — every attacker knows it.
type SupportLookup func(itemset.Itemset) (int, bool)

// MapLookup adapts a map keyed by itemset.Key() to a SupportLookup, with the
// window size answering for the empty itemset.
func MapLookup(m map[string]int, windowSize int) SupportLookup {
	return func(s itemset.Itemset) (int, bool) {
		if s.Empty() {
			return windowSize, true
		}
		v, ok := m[s.Key()]
		return v, ok
	}
}

// maxLatticeItems caps |J \ I| in lattice enumerations: 2^20 nodes is far
// beyond anything a real attack evaluates and certainly a caller bug.
const maxLatticeItems = 20

// Enumerate visits every X with I ⊆ X ⊆ J, invoking fn(X, |X \ I|). It
// returns an error if I ⊄ J or the lattice is unreasonably large. If fn
// returns false, enumeration stops early.
func Enumerate(i, j itemset.Itemset, fn func(x itemset.Itemset, dist int) bool) error {
	if !j.ContainsAll(i) {
		return fmt.Errorf("lattice: %v is not a subset of %v", i, j)
	}
	free := j.Minus(i)
	if free.Len() > maxLatticeItems {
		return fmt.Errorf("lattice: |J\\I| = %d exceeds limit %d", free.Len(), maxLatticeItems)
	}
	stop := false
	free.Subsets(func(sub itemset.Itemset) bool {
		if !fn(i.Union(sub), sub.Len()) {
			stop = true
			return false
		}
		return true
	})
	_ = stop
	return nil
}

// DerivePattern computes the exact support of the pattern I·¬(J\I) by
// inclusion–exclusion over the lattice X_I^J:
//
//	T(I·¬(J\I)) = Σ_{X ∈ X_I^J} (−1)^{|X\I|} T(X)
//
// It reports ok=false if any lattice member's support is unavailable from
// the lookup.
func DerivePattern(i, j itemset.Itemset, lookup SupportLookup) (support int, ok bool, err error) {
	sum := 0
	complete := true
	err = Enumerate(i, j, func(x itemset.Itemset, dist int) bool {
		v, found := lookup(x)
		if !found {
			complete = false
			return false
		}
		if dist%2 == 0 {
			sum += v
		} else {
			sum -= v
		}
		return true
	})
	if err != nil {
		return 0, false, err
	}
	if !complete {
		return 0, false, nil
	}
	return sum, true, nil
}

// PatternOf names the pattern derived by DerivePattern(i, j, ·).
func PatternOf(i, j itemset.Itemset) itemset.Pattern {
	return itemset.NewPattern(i, j.Minus(i))
}

// Interval is an inclusive integer interval [Lo, Hi]. An empty interval
// (Lo > Hi) signals contradiction.
type Interval struct {
	Lo, Hi int
}

// Tight reports whether the interval pins a single value.
func (iv Interval) Tight() bool { return iv.Lo == iv.Hi }

// Empty reports whether the interval contains no value.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Intersect returns the intersection of two intervals.
func (iv Interval) Intersect(other Interval) Interval {
	return Interval{Lo: max(iv.Lo, other.Lo), Hi: min(iv.Hi, other.Hi)}
}

// Shift returns the interval translated by [dlo, dhi].
func (iv Interval) Shift(dlo, dhi int) Interval {
	return Interval{Lo: iv.Lo + dlo, Hi: iv.Hi + dhi}
}

// String renders the interval as "[lo,hi]".
func (iv Interval) String() string { return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi) }

// Bounds computes the non-derivable-itemset bounds on T(J) from the
// supports of proper subsets of J (Example 4 of the paper): for every
// I ⊂ J whose lattice X_I^J \ {J} is fully available,
//
//	T(J) ≤ Σ_{I⊆X⊂J} (−1)^{|J\X|+1} T(X)   when |J \ I| is odd,
//	T(J) ≥ Σ_{I⊆X⊂J} (−1)^{|J\X|+1} T(X)   when |J \ I| is even.
//
// The trivial bounds 0 ≤ T(J) ≤ windowSize always apply. The returned
// interval is the tightest combination over all usable I.
func Bounds(j itemset.Itemset, lookup SupportLookup, windowSize int) (Interval, error) {
	if j.Len() > maxLatticeItems {
		return Interval{}, fmt.Errorf("lattice: bounds on %d-itemset exceeds limit", j.Len())
	}
	iv := Interval{Lo: 0, Hi: windowSize}
	var err error
	j.Subsets(func(i itemset.Itemset) bool {
		if i.Len() == j.Len() {
			return true // I must be proper
		}
		sum := 0
		complete := true
		jlen := j.Len()
		e := Enumerate(i, j, func(x itemset.Itemset, dist int) bool {
			if x.Len() == jlen {
				return true // X ranges over I ⊆ X ⊂ J
			}
			v, found := lookup(x)
			if !found {
				complete = false
				return false
			}
			// (−1)^{|J\X|+1}: positive when |J\X| is odd.
			if (jlen-x.Len())%2 == 1 {
				sum += v
			} else {
				sum -= v
			}
			return true
		})
		if e != nil {
			err = e
			return false
		}
		if !complete {
			return true
		}
		if (jlen-i.Len())%2 == 1 {
			if sum < iv.Hi {
				iv.Hi = sum
			}
		} else {
			if sum > iv.Lo {
				iv.Lo = sum
			}
		}
		return true
	})
	return iv, err
}

// DerivePatternInterval is the interval arithmetic analogue of
// DerivePattern: each lattice member contributes its interval (exact values
// are degenerate intervals), signs alternate, and the result brackets the
// true pattern support. resolve supplies the interval for each lattice
// member; returning ok=false aborts with ok=false.
func DerivePatternInterval(i, j itemset.Itemset, resolve func(itemset.Itemset) (Interval, bool)) (Interval, bool, error) {
	lo, hi := 0, 0
	complete := true
	err := Enumerate(i, j, func(x itemset.Itemset, dist int) bool {
		iv, found := resolve(x)
		if !found {
			complete = false
			return false
		}
		if dist%2 == 0 {
			lo += iv.Lo
			hi += iv.Hi
		} else {
			lo -= iv.Hi
			hi -= iv.Lo
		}
		return true
	})
	if err != nil || !complete {
		return Interval{}, false, err
	}
	return Interval{Lo: lo, Hi: hi}, true, nil
}
