package data

import (
	"math"
	"testing"

	"repro/internal/itemset"
	"repro/internal/mining"
)

func TestQuestConfigValidation(t *testing.T) {
	cases := []QuestConfig{
		{Items: 0, AvgTransactionLen: 2},
		{Items: 10, AvgTransactionLen: 0},
		{Items: 10, AvgTransactionLen: 2, AvgPatternLen: 0.5},
		{Items: 10, AvgTransactionLen: 2, NumPatterns: -1},
		{Items: 10, AvgTransactionLen: 2, CorruptionMean: 1.5},
	}
	for i, cfg := range cases {
		if _, err := NewQuest(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := WebViewLike(42).Generate(100)
	b := WebViewLike(42).Generate(100)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("same seed diverged at transaction %d", i)
		}
	}
	c := WebViewLike(43).Generate(100)
	same := 0
	for i := range a {
		if a[i].Equal(c[i]) {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical streams")
	}
}

func TestTransactionsNonEmptyAndInUniverse(t *testing.T) {
	g, err := NewQuest(QuestConfig{Items: 50, AvgTransactionLen: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range g.Generate(2000) {
		if tx.Empty() {
			t.Fatal("empty transaction")
		}
		for _, it := range tx.Items() {
			if it < 0 || int(it) >= 50 {
				t.Fatalf("item %d outside universe", it)
			}
		}
	}
}

func TestWebViewProfile(t *testing.T) {
	g := WebViewLike(1)
	txs := g.Generate(20000)
	var totalLen int
	maxItem := itemset.Item(0)
	for _, tx := range txs {
		totalLen += tx.Len()
		for _, it := range tx.Items() {
			if it > maxItem {
				maxItem = it
			}
		}
	}
	mean := float64(totalLen) / float64(len(txs))
	if math.Abs(mean-2.5) > 0.8 {
		t.Errorf("mean transaction length = %v, want ≈ 2.5", mean)
	}
	if int(maxItem) >= 497 {
		t.Errorf("item %d outside WebView universe", maxItem)
	}
}

func TestPOSProfile(t *testing.T) {
	g := POSLike(1)
	txs := g.Generate(20000)
	var totalLen int
	for _, tx := range txs {
		totalLen += tx.Len()
	}
	mean := float64(totalLen) / float64(len(txs))
	if math.Abs(mean-6.5) > 1.5 {
		t.Errorf("mean transaction length = %v, want ≈ 6.5", mean)
	}
}

// The streams must exhibit a heavy-headed popularity distribution: the most
// popular item should be dramatically more frequent than the median item.
func TestZipfHead(t *testing.T) {
	g := WebViewLike(3)
	db := itemset.NewDatabase(g.Generate(10000))
	counts := db.ItemSupports()
	maxCount := 0
	var all []int
	for _, c := range counts {
		all = append(all, c)
		if c > maxCount {
			maxCount = c
		}
	}
	// Median via partial sort.
	med := median(all)
	if maxCount < 10*med {
		t.Errorf("popularity head too flat: max %d vs median %d", maxCount, med)
	}
}

func median(xs []int) int {
	// Insertion sort; test-scale input.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs[len(xs)/2]
}

// The paper mines at C=25 over H=2000 windows: the generated streams must
// yield a non-trivial set of frequent itemsets (including itemsets of size
// >= 2, the ones inference attacks need) at those parameters.
func TestMineableAtPaperThresholds(t *testing.T) {
	for name, g := range map[string]*Generator{
		"webview": WebViewLike(11),
		"pos":     POSLike(11),
	} {
		db := itemset.NewDatabase(g.Generate(2000))
		res, err := mining.Eclat(db, 25)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() < 30 {
			t.Errorf("%s: only %d frequent itemsets at C=25, H=2000", name, res.Len())
		}
		big := 0
		for _, fi := range res.Itemsets {
			if fi.Set.Len() >= 2 {
				big++
			}
		}
		if big < 5 {
			t.Errorf("%s: only %d frequent itemsets of size >= 2", name, big)
		}
	}
}

// Planted patterns co-occur: some pattern of size >= 2 should be frequent,
// demonstrating the correlation structure QUEST is meant to produce.
func TestPlantedPatternsCoOccur(t *testing.T) {
	g, err := NewQuest(QuestConfig{
		Items: 100, AvgTransactionLen: 4, AvgPatternLen: 3,
		NumPatterns: 40, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	db := itemset.NewDatabase(g.Generate(3000))
	found := false
	for _, p := range g.Patterns() {
		if p.Len() >= 2 && db.Support(p) >= 30 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no planted multi-item pattern reaches support 30 in 3000 transactions")
	}
}

func BenchmarkGenerateWebView(b *testing.B) {
	g := WebViewLike(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func BenchmarkGeneratePOS(b *testing.B) {
	g := POSLike(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
