// Package data generates synthetic transaction streams. The Butterfly paper
// evaluates on BMS-WebView-1 (clickstream) and BMS-POS (point-of-sale), both
// proprietary KDD-Cup-2000 datasets that cannot be redistributed; this
// package substitutes an IBM QUEST-style generator (Agrawal & Srikant's
// synthetic market-basket model) parameterized to match the published
// profiles of the two datasets:
//
//	BMS-WebView-1: 59,602 transactions, 497 items, mean length ≈ 2.5
//	BMS-POS:      515,597 transactions, 1,657 items, mean length ≈ 6.5
//
// QUEST plants a pool of "potentially frequent" pattern itemsets whose items
// co-occur strongly, then assembles transactions from weighted, corrupted
// pattern draws. This reproduces the two properties every Butterfly result
// depends on: a realistic support distribution (dense frequency equivalence
// classes near the mining threshold) and strong item correlations (so that
// low-support vulnerable patterns are actually inferable from the frequent
// itemsets). Exact item identities — irrelevant to the mechanism — are the
// only thing lost in the substitution.
package data

import (
	"fmt"

	"repro/internal/itemset"
	"repro/internal/rng"
)

// QuestConfig parameterizes the generator. Zero values select documented
// defaults.
type QuestConfig struct {
	// Items is the universe size N (required, > 0).
	Items int
	// AvgTransactionLen is the mean transaction length |T| (required, > 0).
	AvgTransactionLen float64
	// AvgPatternLen is the mean planted-pattern length |I| (default 2).
	AvgPatternLen float64
	// NumPatterns is the pattern-pool size |L| (default Items/2, min 1).
	NumPatterns int
	// PatternZipfSkew shapes pattern popularity (default 0.9): small ranks
	// dominate, giving a heavy head of frequent itemsets like real
	// clickstreams.
	PatternZipfSkew float64
	// CorruptionMean is the mean per-pattern corruption level (default 0.3):
	// the probability that an item of a chosen pattern is dropped from the
	// transaction, so planted itemsets appear with noisy subsets.
	CorruptionMean float64
	// Seed drives all randomness; equal seeds give equal streams.
	Seed uint64
}

func (c QuestConfig) withDefaults() (QuestConfig, error) {
	if c.Items <= 0 {
		return c, fmt.Errorf("data: Items must be positive, got %d", c.Items)
	}
	if c.AvgTransactionLen <= 0 {
		return c, fmt.Errorf("data: AvgTransactionLen must be positive, got %v", c.AvgTransactionLen)
	}
	if c.AvgPatternLen == 0 {
		c.AvgPatternLen = 2
	}
	if c.AvgPatternLen < 1 {
		return c, fmt.Errorf("data: AvgPatternLen must be >= 1, got %v", c.AvgPatternLen)
	}
	if c.NumPatterns == 0 {
		c.NumPatterns = max(1, c.Items/2)
	}
	if c.NumPatterns < 0 {
		return c, fmt.Errorf("data: NumPatterns must be positive, got %d", c.NumPatterns)
	}
	if c.PatternZipfSkew == 0 {
		c.PatternZipfSkew = 0.9
	}
	if c.CorruptionMean == 0 {
		c.CorruptionMean = 0.3
	}
	if c.CorruptionMean < 0 || c.CorruptionMean >= 1 {
		return c, fmt.Errorf("data: CorruptionMean must lie in [0,1), got %v", c.CorruptionMean)
	}
	return c, nil
}

// Generator produces one synthetic transaction stream. It is not safe for
// concurrent use.
type Generator struct {
	cfg        QuestConfig
	src        *rng.Source
	patterns   []itemset.Itemset
	corruption []float64
	picker     *rng.Zipf
	itemPicker *rng.Zipf
}

// NewQuest builds a generator from the configuration.
func NewQuest(cfg QuestConfig) (*Generator, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)
	g := &Generator{
		cfg:        cfg,
		src:        src,
		itemPicker: rng.NewZipf(src, cfg.Items, 0.8),
	}
	g.patterns = make([]itemset.Itemset, cfg.NumPatterns)
	g.corruption = make([]float64, cfg.NumPatterns)
	var prev []itemset.Item
	for i := range g.patterns {
		size := g.src.Poisson(cfg.AvgPatternLen - 1)
		size++ // at least one item
		items := make([]itemset.Item, 0, size)
		// QUEST correlation: reuse a fraction of the previous pattern's
		// items so consecutive patterns overlap.
		for len(items) < size && len(prev) > 0 && g.src.Float64() < 0.5 {
			items = append(items, prev[g.src.Intn(len(prev))])
		}
		for len(items) < size {
			items = append(items, itemset.Item(g.itemPicker.Draw()))
		}
		g.patterns[i] = itemset.New(items...)
		prev = g.patterns[i].Items()
		c := cfg.CorruptionMean + 0.1*g.src.Normal()
		if c < 0 {
			c = 0
		}
		if c > 0.9 {
			c = 0.9
		}
		g.corruption[i] = c
	}
	g.picker = rng.NewZipf(src, cfg.NumPatterns, cfg.PatternZipfSkew)
	return g, nil
}

// Next returns the next transaction.
func (g *Generator) Next() itemset.Itemset {
	target := g.src.Poisson(g.cfg.AvgTransactionLen-1) + 1
	items := make([]itemset.Item, 0, target+2)
	for len(items) < target {
		pi := g.picker.Draw()
		pat := g.patterns[pi]
		added := false
		for _, it := range pat.Items() {
			if g.src.Float64() >= g.corruption[pi] {
				items = append(items, it)
				added = true
			}
		}
		if !added {
			// Fully corrupted draw: fall back to a single popular item so
			// the loop always terminates.
			items = append(items, itemset.Item(g.itemPicker.Draw()))
		}
	}
	return itemset.New(items...)
}

// Generate returns the next n transactions.
func (g *Generator) Generate(n int) []itemset.Itemset {
	out := make([]itemset.Itemset, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Patterns exposes the planted pattern pool (ground truth for tests).
func (g *Generator) Patterns() []itemset.Itemset { return g.patterns }

// WebViewLike returns a generator whose stream matches the published profile
// of BMS-WebView-1: 497 items, mean transaction length ≈ 2.5 (e-commerce
// clickstream sessions with a heavy head of popular pages).
func WebViewLike(seed uint64) *Generator {
	g, err := NewQuest(QuestConfig{
		Items:             497,
		AvgTransactionLen: 2.5,
		AvgPatternLen:     2,
		NumPatterns:       300,
		PatternZipfSkew:   0.9,
		CorruptionMean:    0.25,
		Seed:              seed,
	})
	if err != nil {
		panic(err) // static configuration; cannot fail
	}
	return g
}

// POSLike returns a generator whose stream matches the published profile of
// BMS-POS: 1,657 items, mean transaction length ≈ 6.5 (multi-item retail
// baskets over several years of point-of-sale data).
func POSLike(seed uint64) *Generator {
	g, err := NewQuest(QuestConfig{
		Items:             1657,
		AvgTransactionLen: 6.5,
		AvgPatternLen:     3,
		NumPatterns:       800,
		PatternZipfSkew:   0.9,
		CorruptionMean:    0.3,
		Seed:              seed,
	})
	if err != nil {
		panic(err) // static configuration; cannot fail
	}
	return g
}
