package data

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/itemset"
)

func TestPublishedRoundTrip(t *testing.T) {
	vocab := NewVocabulary()
	entries := []PublishedEntry{
		{Support: 42, Set: itemset.New(vocab.ID("milk"), vocab.ID("bread"))},
		{Support: 17, Set: itemset.New(vocab.ID("eggs"))},
	}
	var buf bytes.Buffer
	if err := WritePublished(&buf, entries, vocab); err != nil {
		t.Fatal(err)
	}
	vocab2 := NewVocabulary()
	got, err := ReadPublished(&buf, vocab2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("round trip lost entries: %d", len(got))
	}
	if got[0].Support != 42 || got[1].Support != 17 {
		t.Errorf("supports changed: %+v", got)
	}
	if got[0].Set.Len() != 2 || got[1].Set.Len() != 1 {
		t.Errorf("sets changed: %+v", got)
	}
	// Token identity survives even though dense ids may differ.
	if vocab2.Render(got[1].Set) != "{eggs}" {
		t.Errorf("tokens lost: %s", vocab2.Render(got[1].Set))
	}
}

func TestReadPublishedSharedVocabulary(t *testing.T) {
	vocab := NewVocabulary()
	a, err := ReadPublished(strings.NewReader("5 x y\n"), vocab)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadPublished(strings.NewReader("4 y x\n"), vocab)
	if err != nil {
		t.Fatal(err)
	}
	if !a[0].Set.Equal(b[0].Set) {
		t.Error("same tokens mapped to different itemsets across files")
	}
}

func TestReadPublishedErrors(t *testing.T) {
	vocab := NewVocabulary()
	if _, err := ReadPublished(strings.NewReader("notanumber x\n"), vocab); err == nil {
		t.Error("bad support accepted")
	}
	if _, err := ReadPublished(strings.NewReader("5\n"), vocab); err == nil {
		t.Error("support without items accepted")
	}
	if _, err := ReadPublished(strings.NewReader(""), nil); err == nil {
		t.Error("nil vocabulary accepted")
	}
}

func TestReadPublishedSkipsCommentsAndBlanks(t *testing.T) {
	vocab := NewVocabulary()
	got, err := ReadPublished(strings.NewReader("# header\n\n3 a\n"), vocab)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Support != 3 {
		t.Errorf("got %+v", got)
	}
}

func TestWritePublishedNumericFallback(t *testing.T) {
	var buf bytes.Buffer
	err := WritePublished(&buf, []PublishedEntry{{Support: 9, Set: itemset.New(2, 0)}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "9 0 2\n" {
		t.Errorf("output = %q", got)
	}
}
