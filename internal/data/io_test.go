package data

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/itemset"
)

func TestReadTransactionsBasic(t *testing.T) {
	in := "a b c\n\n# comment\nb c\na\n"
	txs, vocab, err := ReadTransactions(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 3 {
		t.Fatalf("read %d transactions, want 3", len(txs))
	}
	if vocab.Len() != 3 {
		t.Fatalf("vocabulary has %d tokens, want 3", vocab.Len())
	}
	// a interned first -> id 0.
	if vocab.Token(0) != "a" || vocab.Token(2) != "c" {
		t.Errorf("token order wrong: %q %q", vocab.Token(0), vocab.Token(2))
	}
	if !txs[2].Equal(itemset.New(0)) {
		t.Errorf("third transaction = %v", txs[2])
	}
}

func TestReadTransactionsDuplicateItems(t *testing.T) {
	txs, _, err := ReadTransactions(strings.NewReader("x x y\n"))
	if err != nil {
		t.Fatal(err)
	}
	if txs[0].Len() != 2 {
		t.Errorf("duplicates not collapsed: %v", txs[0])
	}
}

func TestReadTransactionsEmpty(t *testing.T) {
	txs, vocab, err := ReadTransactions(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 0 || vocab.Len() != 0 {
		t.Error("empty input produced data")
	}
}

func TestVocabularyRoundTrip(t *testing.T) {
	v := NewVocabulary()
	ids := []itemset.Item{v.ID("milk"), v.ID("bread"), v.ID("milk")}
	if ids[0] != ids[2] {
		t.Error("re-interning changed id")
	}
	if v.Token(ids[1]) != "bread" {
		t.Error("token lookup wrong")
	}
	if v.Token(99) != "i99" {
		t.Errorf("fallback token = %q", v.Token(99))
	}
	if got := v.Render(itemset.New(ids[0], ids[1])); got != "{milk,bread}" && got != "{bread,milk}" {
		// Items sort by id: milk=0, bread=1.
		t.Errorf("Render = %q", got)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	in := "a b\nc\nb c a\n"
	txs, vocab, err := ReadTransactions(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTransactions(&buf, txs, vocab); err != nil {
		t.Fatal(err)
	}
	txs2, _, err := ReadTransactions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs2) != len(txs) {
		t.Fatalf("round trip changed count: %d vs %d", len(txs2), len(txs))
	}
	for i := range txs {
		if txs[i].Len() != txs2[i].Len() {
			t.Errorf("transaction %d changed size", i)
		}
	}
}

func TestWriteTransactionsNumericFallback(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTransactions(&buf, []itemset.Itemset{itemset.New(3, 1)}, nil); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "1 3\n" {
		t.Errorf("numeric output = %q", got)
	}
}
