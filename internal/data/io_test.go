package data

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/itemset"
)

func TestReadTransactionsBasic(t *testing.T) {
	in := "a b c\n\n# comment\nb c\na\n"
	txs, vocab, err := ReadTransactions(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 3 {
		t.Fatalf("read %d transactions, want 3", len(txs))
	}
	if vocab.Len() != 3 {
		t.Fatalf("vocabulary has %d tokens, want 3", vocab.Len())
	}
	// a interned first -> id 0.
	if vocab.Token(0) != "a" || vocab.Token(2) != "c" {
		t.Errorf("token order wrong: %q %q", vocab.Token(0), vocab.Token(2))
	}
	if !txs[2].Equal(itemset.New(0)) {
		t.Errorf("third transaction = %v", txs[2])
	}
}

func TestReadTransactionsDuplicateItems(t *testing.T) {
	txs, _, err := ReadTransactions(strings.NewReader("x x y\n"))
	if err != nil {
		t.Fatal(err)
	}
	if txs[0].Len() != 2 {
		t.Errorf("duplicates not collapsed: %v", txs[0])
	}
}

func TestReadTransactionsEmpty(t *testing.T) {
	txs, vocab, err := ReadTransactions(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 0 || vocab.Len() != 0 {
		t.Error("empty input produced data")
	}
}

func TestVocabularyRoundTrip(t *testing.T) {
	v := NewVocabulary()
	ids := []itemset.Item{v.ID("milk"), v.ID("bread"), v.ID("milk")}
	if ids[0] != ids[2] {
		t.Error("re-interning changed id")
	}
	if v.Token(ids[1]) != "bread" {
		t.Error("token lookup wrong")
	}
	if v.Token(99) != "i99" {
		t.Errorf("fallback token = %q", v.Token(99))
	}
	if got := v.Render(itemset.New(ids[0], ids[1])); got != "{milk,bread}" && got != "{bread,milk}" {
		// Items sort by id: milk=0, bread=1.
		t.Errorf("Render = %q", got)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	in := "a b\nc\nb c a\n"
	txs, vocab, err := ReadTransactions(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTransactions(&buf, txs, vocab); err != nil {
		t.Fatal(err)
	}
	txs2, _, err := ReadTransactions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs2) != len(txs) {
		t.Fatalf("round trip changed count: %d vs %d", len(txs2), len(txs))
	}
	for i := range txs {
		if txs[i].Len() != txs2[i].Len() {
			t.Errorf("transaction %d changed size", i)
		}
	}
}

func TestReadTransactionsFailsFastWithLineAndToken(t *testing.T) {
	in := "a b\nc\nbad\x00token x\nd e\n"
	_, _, err := ReadTransactions(strings.NewReader(in))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a *ParseError", err)
	}
	if pe.Line != 3 {
		t.Errorf("line = %d, want 3", pe.Line)
	}
	if !strings.Contains(pe.Token, "bad") {
		t.Errorf("token = %q, want the offending token", pe.Token)
	}
	if !errors.Is(err, ErrTokenNUL) {
		t.Errorf("reason = %v, want ErrTokenNUL", pe.Err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("message %q lacks the line number", err.Error())
	}
}

func TestReadTransactionsOverlongToken(t *testing.T) {
	in := "ok\n" + strings.Repeat("x", MaxTokenLen+1) + " y\n"
	_, _, err := ReadTransactions(strings.NewReader(in))
	if !errors.Is(err, ErrTokenTooLong) {
		t.Fatalf("err = %v, want ErrTokenTooLong", err)
	}
	var pe *ParseError
	if !errors.As(err, &pe) || pe.Line != 2 {
		t.Errorf("bad line attribution: %v", err)
	}
	if len(pe.Token) > 64 {
		t.Errorf("token not clipped for display: %d bytes", len(pe.Token))
	}
}

func TestReadTransactionsCROnlyEndings(t *testing.T) {
	// A bare CR is Unicode whitespace: it separates tokens but does not end
	// a line, so "a b\rc d" is ONE transaction of four items.
	txs, vocab, err := ReadTransactions(strings.NewReader("a b\rc d\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 1 || txs[0].Len() != 4 || vocab.Len() != 4 {
		t.Fatalf("txs=%v vocab=%d, want one 4-item transaction", txs, vocab.Len())
	}
}

// TestTransactionReaderSkipsBadLines: a malformed line is recoverable — the
// reader skips it whole (interning none of its tokens, so clean records
// keep their ids) and continues with the next line.
func TestTransactionReaderSkipsBadLines(t *testing.T) {
	in := "a b\nzap\x00 c\nb d\n"
	tr := NewTransactionReader(strings.NewReader(in), nil)

	first, err := tr.Next()
	if err != nil || first.Len() != 2 {
		t.Fatalf("first = %v, %v", first, err)
	}
	var pe *ParseError
	if _, err := tr.Next(); !errors.As(err, &pe) || pe.Line != 2 {
		t.Fatalf("second call: err = %v, want ParseError at line 2", err)
	}
	third, err := tr.Next()
	if err != nil || third.Len() != 2 {
		t.Fatalf("third = %v, %v", third, err)
	}
	if _, err := tr.Next(); err != io.EOF {
		t.Fatalf("after last record: %v, want io.EOF", err)
	}
	// "c" from the bad line must not have been interned: a,b,d only.
	if tr.Vocabulary().Len() != 3 {
		t.Errorf("vocabulary has %d tokens, want 3 (bad line must not intern)", tr.Vocabulary().Len())
	}
}

func TestReadTransactionsFuncSkipAndCount(t *testing.T) {
	in := "a b\nx\x00 y\nc\n" + strings.Repeat("z", MaxTokenLen+1) + "\nd e f\n"
	tr := NewTransactionReader(strings.NewReader(in), nil)
	var good, bad int
	var lines []int
	err := ReadTransactionsFunc(tr,
		func(itemset.Itemset) error { good++; return nil },
		func(pe *ParseError) error { bad++; lines = append(lines, pe.Line); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if good != 3 || bad != 2 {
		t.Fatalf("good=%d bad=%d, want 3/2", good, bad)
	}
	if len(lines) != 2 || lines[0] != 2 || lines[1] != 4 {
		t.Errorf("bad lines = %v, want [2 4]", lines)
	}
}

func TestVocabularyConcurrentUse(t *testing.T) {
	v := NewVocabulary()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := v.ID(fmt.Sprintf("tok-%d", i%50))
				_ = v.Token(id)
				_ = v.Render(itemset.New(id))
				_ = v.Len()
			}
		}(w)
	}
	wg.Wait()
	if v.Len() != 50 {
		t.Fatalf("vocabulary has %d tokens, want 50", v.Len())
	}
}

func TestWriteTransactionsNumericFallback(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTransactions(&buf, []itemset.Itemset{itemset.New(3, 1)}, nil); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "1 3\n" {
		t.Errorf("numeric output = %q", got)
	}
}
