package data

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTransactions hammers the transaction parser with arbitrary input.
// Whatever the bytes — malformed lines, huge numeric tokens, empty
// transactions, binary garbage — the parser must never panic; on success,
// every itemset must be canonical (ids dense in the vocabulary, items
// strictly increasing) and the output must survive a write/re-read round
// trip. A seed corpus covering the interesting syntactic shapes is checked
// in under testdata/fuzz/FuzzReadTransactions.
func FuzzReadTransactions(f *testing.F) {
	for _, seed := range []string{
		"a b c\na b\nb c\n",
		"",
		"# comment only\n\n\n",
		"1 2 2 1\n",
		"99999999999999999999 0 -17\n",
		"  \t  \n",
		"#x y\nx #y\n",
		"solo",
		strings.Repeat("tok ", 300) + "\n",
		"a\x00b \xff\xfe\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		recs, vocab, err := ReadTransactions(strings.NewReader(input))
		if err != nil {
			// Errors (e.g. oversized lines) are fine; panics are not.
			return
		}
		for ri, rec := range recs {
			items := rec.Items()
			for i, it := range items {
				if int(it) < 0 || int(it) >= vocab.Len() {
					t.Fatalf("record %d: item id %d outside vocabulary of %d tokens", ri, it, vocab.Len())
				}
				if i > 0 && items[i-1] >= it {
					t.Fatalf("record %d: items not strictly increasing at %d", ri, i)
				}
			}
		}
		// Round trip: writing what we parsed and re-reading it must succeed.
		// (It need not be structurally identical — empty transactions write
		// blank lines, which the reader skips by design.)
		var buf bytes.Buffer
		if err := WriteTransactions(&buf, recs, vocab); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		if _, _, err := ReadTransactions(&buf); err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
	})
}
