package data

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// FuzzReadTransactions hammers the transaction parser with arbitrary input,
// through both reading disciplines. Whatever the bytes — malformed lines,
// NUL bytes, overlong tokens, huge numeric tokens, CR-only endings, binary
// garbage — neither path may panic. The streaming TransactionReader must
// classify every failure as either a recoverable *ParseError (with a valid
// 1-based line number, skipping the whole line) or a fatal scanner error;
// the fail-fast ReadTransactions must succeed exactly when the streaming
// pass found zero bad lines. On success, every itemset must be canonical
// (ids dense in the vocabulary, items strictly increasing) and the output
// must survive a write/re-read round trip. A seed corpus covering the
// interesting syntactic shapes is checked in under
// testdata/fuzz/FuzzReadTransactions.
func FuzzReadTransactions(f *testing.F) {
	for _, seed := range []string{
		"a b c\na b\nb c\n",
		"",
		"# comment only\n\n\n",
		"1 2 2 1\n",
		"99999999999999999999 0 -17\n",
		"  \t  \n",
		"#x y\nx #y\n",
		"solo",
		strings.Repeat("tok ", 300) + "\n",
		"a\x00b \xff\xfe\n",
		// Malformed-line shapes the skip-and-count path must absorb:
		strings.Repeat("x", MaxTokenLen+1) + " ok\nnext line\n", // overlong token
		"good line\nbad\x00token\nalso good\n",                  // NUL mid-stream
		"a b\rc d\re f\n",                                       // CR-only "endings" (whitespace, not errors)
		"\x00\n\x00\x00 \x00\n",                                 // nothing but NULs
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		// Streaming pass with skip-and-count: every error is either a
		// recoverable ParseError (line skipped, reader resynchronized) or a
		// fatal scanner error that ends the stream.
		tr := NewTransactionReader(strings.NewReader(input), nil)
		good, bad := 0, 0
		var fatal error
		for {
			_, err := tr.Next()
			if err == io.EOF {
				break
			}
			var pe *ParseError
			if errors.As(err, &pe) {
				if pe.Line < 1 {
					t.Fatalf("ParseError with line %d: %v", pe.Line, pe)
				}
				bad++
				continue
			}
			if err != nil {
				fatal = err
				break
			}
			good++
		}

		recs, vocab, err := ReadTransactions(strings.NewReader(input))
		switch {
		case fatal != nil:
			if err == nil {
				t.Fatalf("fail-fast read succeeded where the streaming read hit a fatal error: %v", fatal)
			}
			return
		case bad > 0:
			if err == nil {
				t.Fatalf("fail-fast read accepted input with %d malformed lines", bad)
			}
			return
		case err != nil:
			t.Fatalf("fail-fast read rejected input the streaming read handled cleanly: %v", err)
		}
		if len(recs) != good {
			t.Fatalf("fail-fast read parsed %d records, streaming read %d", len(recs), good)
		}
		for ri, rec := range recs {
			items := rec.Items()
			for i, it := range items {
				if int(it) < 0 || int(it) >= vocab.Len() {
					t.Fatalf("record %d: item id %d outside vocabulary of %d tokens", ri, it, vocab.Len())
				}
				if i > 0 && items[i-1] >= it {
					t.Fatalf("record %d: items not strictly increasing at %d", ri, i)
				}
			}
		}
		// Round trip: writing what we parsed and re-reading it must succeed.
		// (It need not be structurally identical — empty transactions write
		// blank lines, which the reader skips by design.)
		var buf bytes.Buffer
		if err := WriteTransactions(&buf, recs, vocab); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		if _, _, err := ReadTransactions(&buf); err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
	})
}
