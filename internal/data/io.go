package data

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/itemset"
)

// Vocabulary maps external item tokens to dense itemset.Item identifiers
// and back. Mining operates on dense ids; presentation uses the tokens.
//
// Vocabulary is safe for concurrent use: a streaming reader may intern new
// tokens while an emit stage renders already-published itemsets.
type Vocabulary struct {
	mu      sync.RWMutex
	byToken map[string]itemset.Item
	tokens  []string
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{byToken: map[string]itemset.Item{}}
}

// ID interns a token, assigning the next dense id on first sight.
func (v *Vocabulary) ID(token string) itemset.Item {
	v.mu.RLock()
	id, ok := v.byToken[token]
	v.mu.RUnlock()
	if ok {
		return id
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if id, ok := v.byToken[token]; ok {
		return id
	}
	id = itemset.Item(len(v.tokens))
	v.byToken[token] = id
	v.tokens = append(v.tokens, token)
	return id
}

// Token returns the external token of a dense id, or a numeric fallback for
// ids the vocabulary never saw (synthetic data).
func (v *Vocabulary) Token(id itemset.Item) string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.token(id)
}

func (v *Vocabulary) token(id itemset.Item) string {
	if int(id) < len(v.tokens) {
		return v.tokens[id]
	}
	return fmt.Sprintf("i%d", id)
}

// Len returns the number of interned tokens.
func (v *Vocabulary) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.tokens)
}

// Render formats an itemset with the vocabulary's tokens.
func (v *Vocabulary) Render(s itemset.Itemset) string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	var b strings.Builder
	b.WriteByte('{')
	for i, it := range s.Items() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(v.token(it))
	}
	b.WriteByte('}')
	return b.String()
}

// MaxTokenLen bounds a single item token in bytes. Longer tokens are treated
// as corruption (a missing newline, binary garbage) rather than data.
const MaxTokenLen = 1024

// Reasons a token is rejected; ParseError wraps one of these.
var (
	// ErrTokenTooLong marks a token longer than MaxTokenLen bytes.
	ErrTokenTooLong = errors.New("token exceeds MaxTokenLen bytes")
	// ErrTokenNUL marks a token containing a NUL byte.
	ErrTokenNUL = errors.New("token contains a NUL byte")
)

// ParseError reports one malformed transaction line. It is recoverable: a
// TransactionReader that returns a *ParseError has skipped the offending
// line (without interning any of its tokens) and continues with the next
// line, so callers may count-and-skip instead of aborting.
type ParseError struct {
	// Line is the 1-based line number of the malformed line.
	Line int
	// Token is the offending token, clipped for display.
	Token string
	// Err is the rejection reason (ErrTokenTooLong, ErrTokenNUL, ...).
	Err error
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("data: line %d: token %q: %v", e.Line, e.Token, e.Err)
}

// Unwrap exposes the rejection reason to errors.Is.
func (e *ParseError) Unwrap() error { return e.Err }

// clipToken truncates a token for inclusion in error messages.
func clipToken(tok string) string {
	const max = 48
	if len(tok) <= max {
		return tok
	}
	return tok[:max] + "..."
}

// validateToken rejects tokens that cannot be legitimate item identifiers.
func validateToken(tok string) error {
	if len(tok) > MaxTokenLen {
		return ErrTokenTooLong
	}
	if strings.IndexByte(tok, 0) >= 0 {
		return ErrTokenNUL
	}
	return nil
}

// TransactionReader streams a transaction file one record at a time without
// buffering the whole input — the scanner behind every streaming ingest
// path. The input is the conventional one-transaction-per-line format:
// whitespace-separated item tokens (CR and other Unicode whitespace count
// as separators). Blank lines and lines starting with '#' are skipped.
// Tokens are interned into the vocabulary in order of first appearance;
// malformed lines are skipped whole, before any of their tokens are
// interned, so a corrupted line never shifts the ids of the clean records
// around it.
type TransactionReader struct {
	sc    *bufio.Scanner
	vocab *Vocabulary
	line  int
	fatal error
}

// NewTransactionReader returns a reader over r interning tokens into vocab
// (a nil vocab allocates a fresh one, retrievable via Vocabulary).
func NewTransactionReader(r io.Reader, vocab *Vocabulary) *TransactionReader {
	if vocab == nil {
		vocab = NewVocabulary()
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &TransactionReader{sc: sc, vocab: vocab}
}

// Vocabulary returns the vocabulary tokens are interned into.
func (tr *TransactionReader) Vocabulary() *Vocabulary { return tr.vocab }

// Line returns the 1-based number of the last line consumed.
func (tr *TransactionReader) Line() int { return tr.line }

// Next returns the next transaction. io.EOF ends a fully-consumed stream. A
// *ParseError reports one malformed line — the reader has already skipped it
// and the next call continues with the following line. Any other error
// (such as an oversized line overflowing the scan buffer, after which the
// reader cannot resynchronize) is fatal and repeats on subsequent calls.
func (tr *TransactionReader) Next() (itemset.Itemset, error) {
	if tr.fatal != nil {
		return itemset.Itemset{}, tr.fatal
	}
	for tr.sc.Scan() {
		tr.line++
		text := strings.TrimSpace(tr.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		// Validate every token before interning any: rejecting the line
		// must leave the vocabulary exactly as if the line never existed.
		for _, f := range fields {
			if err := validateToken(f); err != nil {
				return itemset.Itemset{}, &ParseError{Line: tr.line, Token: clipToken(f), Err: err}
			}
		}
		items := make([]itemset.Item, 0, len(fields))
		for _, f := range fields {
			items = append(items, tr.vocab.ID(f))
		}
		return itemset.New(items...), nil
	}
	if err := tr.sc.Err(); err != nil {
		tr.fatal = fmt.Errorf("data: reading transactions at line %d: %w", tr.line+1, err)
	} else {
		tr.fatal = io.EOF
	}
	return itemset.Itemset{}, tr.fatal
}

// ReadTransactions parses a transaction stream, buffering every record. It
// fails fast on the first malformed line with a *ParseError carrying the
// 1-based line number and offending token; callers that want to skip and
// count malformed lines instead should use TransactionReader or
// ReadTransactionsFunc with an onBad handler.
func ReadTransactions(r io.Reader) ([]itemset.Itemset, *Vocabulary, error) {
	var out []itemset.Itemset
	tr := NewTransactionReader(r, nil)
	err := ReadTransactionsFunc(tr, func(tx itemset.Itemset) error {
		out = append(out, tx)
		return nil
	}, nil)
	if err != nil {
		return nil, nil, err
	}
	return out, tr.Vocabulary(), nil
}

// ReadTransactionsFunc streams every transaction of tr to fn without
// buffering the input. Malformed lines are passed to onBad, which may
// return nil to skip the line and continue or an error to abort; a nil
// onBad fails fast on the first malformed line. The first error from fn
// aborts the stream and is returned verbatim.
func ReadTransactionsFunc(tr *TransactionReader, fn func(itemset.Itemset) error, onBad func(*ParseError) error) error {
	for {
		tx, err := tr.Next()
		if err == io.EOF {
			return nil
		}
		var pe *ParseError
		if errors.As(err, &pe) {
			if onBad == nil {
				return err
			}
			if err := onBad(pe); err != nil {
				return err
			}
			continue
		}
		if err != nil {
			return err
		}
		if err := fn(tx); err != nil {
			return err
		}
	}
}

// WriteTransactions writes transactions in the same format ReadTransactions
// parses, using the vocabulary's tokens (nil vocabulary writes numeric ids).
func WriteTransactions(w io.Writer, txs []itemset.Itemset, vocab *Vocabulary) error {
	bw := bufio.NewWriter(w)
	for _, tx := range txs {
		for i, it := range tx.Items() {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			var tok string
			if vocab != nil {
				tok = vocab.Token(it)
			} else {
				tok = fmt.Sprintf("%d", it)
			}
			if _, err := bw.WriteString(tok); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
