package data

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/itemset"
)

// Vocabulary maps external item tokens to dense itemset.Item identifiers
// and back. Mining operates on dense ids; presentation uses the tokens.
type Vocabulary struct {
	byToken map[string]itemset.Item
	tokens  []string
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{byToken: map[string]itemset.Item{}}
}

// ID interns a token, assigning the next dense id on first sight.
func (v *Vocabulary) ID(token string) itemset.Item {
	if id, ok := v.byToken[token]; ok {
		return id
	}
	id := itemset.Item(len(v.tokens))
	v.byToken[token] = id
	v.tokens = append(v.tokens, token)
	return id
}

// Token returns the external token of a dense id, or a numeric fallback for
// ids the vocabulary never saw (synthetic data).
func (v *Vocabulary) Token(id itemset.Item) string {
	if int(id) < len(v.tokens) {
		return v.tokens[id]
	}
	return fmt.Sprintf("i%d", id)
}

// Len returns the number of interned tokens.
func (v *Vocabulary) Len() int { return len(v.tokens) }

// Render formats an itemset with the vocabulary's tokens.
func (v *Vocabulary) Render(s itemset.Itemset) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, it := range s.Items() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(v.Token(it))
	}
	b.WriteByte('}')
	return b.String()
}

// ReadTransactions parses a transaction stream in the conventional
// one-transaction-per-line format: whitespace-separated item tokens
// (numeric or not). Blank lines and lines starting with '#' are skipped.
// Tokens are interned into the returned Vocabulary in order of first
// appearance.
func ReadTransactions(r io.Reader) ([]itemset.Itemset, *Vocabulary, error) {
	vocab := NewVocabulary()
	var out []itemset.Itemset
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		items := make([]itemset.Item, 0, len(fields))
		for _, f := range fields {
			items = append(items, vocab.ID(f))
		}
		out = append(out, itemset.New(items...))
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("data: reading transactions at line %d: %w", line, err)
	}
	return out, vocab, nil
}

// WriteTransactions writes transactions in the same format ReadTransactions
// parses, using the vocabulary's tokens (nil vocabulary writes numeric ids).
func WriteTransactions(w io.Writer, txs []itemset.Itemset, vocab *Vocabulary) error {
	bw := bufio.NewWriter(w)
	for _, tx := range txs {
		for i, it := range tx.Items() {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			var tok string
			if vocab != nil {
				tok = vocab.Token(it)
			} else {
				tok = fmt.Sprintf("%d", it)
			}
			if _, err := bw.WriteString(tok); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
