package data

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/itemset"
)

// PublishedEntry is one itemset of a published-output file: the format
// cmd/butterfly dumps and cmd/audit consumes. On disk each entry is one
// line, "<support> <item tokens...>".
type PublishedEntry struct {
	Support int
	Set     itemset.Itemset
}

// ReadPublished parses a published-output file. Tokens are interned into
// vocab so that multiple files read with the same Vocabulary share item
// identifiers (required when auditing consecutive windows). Blank lines and
// '#' comments are skipped.
func ReadPublished(r io.Reader, vocab *Vocabulary) ([]PublishedEntry, error) {
	if vocab == nil {
		return nil, fmt.Errorf("data: ReadPublished requires a vocabulary")
	}
	var out []PublishedEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("data: published line %d needs a support and at least one item: %q", line, text)
		}
		sup, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("data: published line %d: bad support %q: %w", line, fields[0], err)
		}
		items := make([]itemset.Item, 0, len(fields)-1)
		for _, f := range fields[1:] {
			items = append(items, vocab.ID(f))
		}
		out = append(out, PublishedEntry{Support: sup, Set: itemset.New(items...)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("data: reading published output at line %d: %w", line, err)
	}
	return out, nil
}

// WritePublished writes entries in the format ReadPublished parses. A nil
// vocabulary writes numeric item ids. Numbers are formatted through one
// reused append buffer, so a window dump costs no formatting garbage.
func WritePublished(w io.Writer, entries []PublishedEntry, vocab *Vocabulary) error {
	bw := bufio.NewWriter(w)
	var num []byte
	for _, e := range entries {
		num = strconv.AppendInt(num[:0], int64(e.Support), 10)
		if _, err := bw.Write(num); err != nil {
			return err
		}
		for _, it := range e.Set.Items() {
			if err := bw.WriteByte(' '); err != nil {
				return err
			}
			var err error
			if vocab != nil {
				_, err = bw.WriteString(vocab.Token(it))
			} else {
				num = strconv.AppendInt(num[:0], int64(it), 10)
				_, err = bw.Write(num)
			}
			if err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
