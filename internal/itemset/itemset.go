// Package itemset defines the data model of frequent-pattern mining as used
// throughout this repository: items, itemsets, generalized patterns that may
// contain negated items, and transaction databases with support counting.
//
// The definitions follow §III of the Butterfly paper (Wang & Liu, ICDE 2008):
// an itemset is a set of items; a pattern is a set of items and item
// negations; a record satisfies a pattern if it contains every positive item
// and none of the negated ones; the support of an itemset or pattern with
// respect to a database is the number of records satisfying it.
package itemset

import (
	"fmt"
	"sort"
	"strings"
)

// Item identifies a single item. Items are small non-negative integers;
// datasets map their native identifiers (page URLs, SKUs, symptoms) onto a
// dense [0, M) range before mining.
type Item int32

// Itemset is a canonical (sorted, duplicate-free) set of items. The zero
// value is the empty itemset. Itemsets are treated as immutable: all methods
// return new values and never alias the receiver's backing array in a way
// that permits mutation through the result.
type Itemset struct {
	items []Item // sorted ascending, no duplicates
}

// New builds an Itemset from the given items, sorting and de-duplicating.
func New(items ...Item) Itemset {
	if len(items) == 0 {
		return Itemset{}
	}
	s := make([]Item, len(items))
	copy(s, items)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:1]
	for _, it := range s[1:] {
		if it != out[len(out)-1] {
			out = append(out, it)
		}
	}
	return Itemset{items: out}
}

// FromSorted wraps an already sorted, duplicate-free slice without copying.
// The caller must not modify the slice afterwards. It panics if the slice is
// not strictly increasing, because a silently mis-ordered itemset corrupts
// every map keyed by Key.
func FromSorted(items []Item) Itemset {
	for i := 1; i < len(items); i++ {
		if items[i] <= items[i-1] {
			panic(fmt.Sprintf("itemset: FromSorted input not strictly increasing at %d", i))
		}
	}
	return Itemset{items: items}
}

// Len returns the number of items.
func (s Itemset) Len() int { return len(s.items) }

// Empty reports whether the itemset has no items.
func (s Itemset) Empty() bool { return len(s.items) == 0 }

// Items returns the items in ascending order. The returned slice must not be
// modified.
func (s Itemset) Items() []Item { return s.items }

// At returns the i-th smallest item.
func (s Itemset) At(i int) Item { return s.items[i] }

// Contains reports whether item is a member of s.
func (s Itemset) Contains(item Item) bool {
	i := sort.Search(len(s.items), func(i int) bool { return s.items[i] >= item })
	return i < len(s.items) && s.items[i] == item
}

// ContainsAll reports whether other ⊆ s.
func (s Itemset) ContainsAll(other Itemset) bool {
	if other.Len() > s.Len() {
		return false
	}
	i := 0
	for _, o := range other.items {
		for i < len(s.items) && s.items[i] < o {
			i++
		}
		if i == len(s.items) || s.items[i] != o {
			return false
		}
		i++
	}
	return true
}

// Equal reports whether s and other hold exactly the same items.
func (s Itemset) Equal(other Itemset) bool {
	if len(s.items) != len(other.items) {
		return false
	}
	for i, it := range s.items {
		if other.items[i] != it {
			return false
		}
	}
	return true
}

// Union returns s ∪ other.
func (s Itemset) Union(other Itemset) Itemset {
	out := make([]Item, 0, len(s.items)+len(other.items))
	i, j := 0, 0
	for i < len(s.items) && j < len(other.items) {
		switch {
		case s.items[i] < other.items[j]:
			out = append(out, s.items[i])
			i++
		case s.items[i] > other.items[j]:
			out = append(out, other.items[j])
			j++
		default:
			out = append(out, s.items[i])
			i++
			j++
		}
	}
	out = append(out, s.items[i:]...)
	out = append(out, other.items[j:]...)
	return Itemset{items: out}
}

// Intersect returns s ∩ other.
func (s Itemset) Intersect(other Itemset) Itemset {
	out := make([]Item, 0, min(len(s.items), len(other.items)))
	i, j := 0, 0
	for i < len(s.items) && j < len(other.items) {
		switch {
		case s.items[i] < other.items[j]:
			i++
		case s.items[i] > other.items[j]:
			j++
		default:
			out = append(out, s.items[i])
			i++
			j++
		}
	}
	return Itemset{items: out}
}

// Minus returns s \ other.
func (s Itemset) Minus(other Itemset) Itemset {
	out := make([]Item, 0, len(s.items))
	j := 0
	for _, it := range s.items {
		for j < len(other.items) && other.items[j] < it {
			j++
		}
		if j < len(other.items) && other.items[j] == it {
			continue
		}
		out = append(out, it)
	}
	return Itemset{items: out}
}

// With returns s ∪ {item}.
func (s Itemset) With(item Item) Itemset {
	if s.Contains(item) {
		return s
	}
	out := make([]Item, 0, len(s.items)+1)
	inserted := false
	for _, it := range s.items {
		if !inserted && item < it {
			out = append(out, item)
			inserted = true
		}
		out = append(out, it)
	}
	if !inserted {
		out = append(out, item)
	}
	return Itemset{items: out}
}

// Without returns s \ {item}.
func (s Itemset) Without(item Item) Itemset {
	if !s.Contains(item) {
		return s
	}
	out := make([]Item, 0, len(s.items)-1)
	for _, it := range s.items {
		if it != item {
			out = append(out, it)
		}
	}
	return Itemset{items: out}
}

// Key returns a compact string usable as a map key. Two itemsets have equal
// keys iff they are Equal.
func (s Itemset) Key() string {
	if len(s.items) == 0 {
		return ""
	}
	// Each item encoded little-endian in 4 bytes; fixed width keeps the key
	// prefix-free across lengths.
	var b strings.Builder
	b.Grow(4 * len(s.items))
	for _, it := range s.items {
		v := uint32(it)
		b.WriteByte(byte(v))
		b.WriteByte(byte(v >> 8))
		b.WriteByte(byte(v >> 16))
		b.WriteByte(byte(v >> 24))
	}
	return b.String()
}

// AppendKey appends the Key() encoding of s to dst and returns the extended
// slice. `m[string(dst)]` lookups against a map keyed by Key() strings then
// cost zero allocations (the compiler elides the conversion), which is what
// lets the publisher's republication cache run allocation-free on hits: the
// string is materialized only when a genuinely new key is inserted.
func (s Itemset) AppendKey(dst []byte) []byte {
	for _, it := range s.items {
		v := uint32(it)
		dst = append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return dst
}

// Compare orders itemsets exactly as comparing their Key() strings does —
// item by item in the little-endian byte order Key encodes, ties broken by
// length — but without materializing either key. Every sort that used to
// compare Key() strings in its comparator (allocating two strings per
// comparison) goes through Compare instead; the orders MUST stay identical,
// because published output order is part of the determinism contract.
// It returns -1, 0 or 1.
func Compare(a, b Itemset) int {
	n := min(len(a.items), len(b.items))
	for i := 0; i < n; i++ {
		if c := compareItemLE(a.items[i], b.items[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a.items) < len(b.items):
		return -1
	case len(a.items) > len(b.items):
		return 1
	}
	return 0
}

// compareItemLE compares two items by the little-endian byte encoding Key
// uses — NOT numerically. (For the dense non-negative ids datasets intern,
// the orders differ only across 256-value boundaries, but the byte order is
// what Key() historically pinned, so it is the one we preserve.)
func compareItemLE(x, y Item) int {
	a, b := uint32(x), uint32(y)
	for s := 0; s < 32; s += 8 {
		ba, bb := byte(a>>s), byte(b>>s)
		if ba != bb {
			if ba < bb {
				return -1
			}
			return 1
		}
	}
	return 0
}

// String renders the itemset as "{a,b,c}" with numeric items, or letters for
// items 0..25 to match the paper's running examples.
func (s Itemset) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, it := range s.items {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(itemString(it))
	}
	b.WriteByte('}')
	return b.String()
}

func itemString(it Item) string {
	if it >= 0 && it < 26 {
		return string(rune('a' + it))
	}
	return fmt.Sprintf("i%d", it)
}

// Subsets calls fn for every subset of s, including the empty itemset and s
// itself. Enumeration order is by binary counter over item positions. If fn
// returns false, enumeration stops early. Subsets panics when s has more than
// 30 items, because 2^|s| enumeration is certainly a bug at that size.
func (s Itemset) Subsets(fn func(Itemset) bool) {
	n := len(s.items)
	if n > 30 {
		panic("itemset: Subsets on itemset larger than 30 items")
	}
	for mask := 0; mask < 1<<n; mask++ {
		sub := make([]Item, 0, n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sub = append(sub, s.items[i])
			}
		}
		if !fn(Itemset{items: sub}) {
			return
		}
	}
}

// ProperSubsets calls fn for every proper, non-empty subset of s.
func (s Itemset) ProperSubsets(fn func(Itemset) bool) {
	n := len(s.items)
	s.Subsets(func(sub Itemset) bool {
		if sub.Len() == 0 || sub.Len() == n {
			return true
		}
		return fn(sub)
	})
}
