package itemset

import "testing"

func TestPatternMatches(t *testing.T) {
	// Pattern ab¬c from the paper's running example.
	p := NewPattern(New(0, 1), New(2))
	cases := []struct {
		record Itemset
		want   bool
	}{
		{New(0, 1), true},
		{New(0, 1, 3), true},
		{New(0, 1, 2), false},
		{New(0), false},
		{New(1, 3), false},
		{New(), false},
	}
	for _, tc := range cases {
		if got := p.Matches(tc.record); got != tc.want {
			t.Errorf("Matches(%v) = %v, want %v", tc.record, got, tc.want)
		}
	}
}

func TestPatternPureItemset(t *testing.T) {
	p := NewPattern(New(1, 2), New())
	if !p.Matches(New(1, 2, 3)) {
		t.Error("pure positive pattern should match superset record")
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d", p.Len())
	}
}

func TestPatternOverlapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping pattern did not panic")
		}
	}()
	NewPattern(New(1, 2), New(2, 3))
}

func TestPatternString(t *testing.T) {
	p := NewPattern(New(0, 1), New(2))
	if got := p.String(); got != "ab¬c" {
		t.Errorf("String = %q", got)
	}
	empty := NewPattern(New(), New())
	if got := empty.String(); got != "∅" {
		t.Errorf("String = %q", got)
	}
}

func TestPatternKeyAndEqual(t *testing.T) {
	p1 := NewPattern(New(0, 1), New(2))
	p2 := NewPattern(New(0, 1), New(2))
	p3 := NewPattern(New(0, 1, 2), New())
	p4 := NewPattern(New(0), New(1, 2))
	if !p1.Equal(p2) || p1.Key() != p2.Key() {
		t.Error("identical patterns not equal")
	}
	if p1.Equal(p3) || p1.Key() == p3.Key() {
		t.Error("distinct patterns compare equal")
	}
	if p1.Equal(p4) || p1.Key() == p4.Key() {
		t.Error("moving items between parts should change identity")
	}
}

func TestDatabaseSupport(t *testing.T) {
	// The stream of Fig. 2, window Ds(12, 8) = records r5..r12.
	// Items: a=0 b=1 c=2 d=3.
	db := NewDatabase([]Itemset{
		New(0),          // r5: a
		New(0, 1, 2),    // r6: abc
		New(1, 2, 3),    // r7: bcd
		New(0, 1, 2),    // r8: abc (matches ab¬d? no—wait, just fixture)
		New(0, 2, 3),    // r9: acd
		New(1, 2, 3),    // r10: bcd
		New(0, 1, 2, 3), // r11: abcd
		New(2, 3),       // r12: cd
	})
	if got := db.Support(New(2)); got != 7 {
		t.Errorf("T(c) = %d, want 7", got)
	}
	if got := db.Support(New(0, 1, 2)); got != 3 {
		t.Errorf("T(abc) = %d, want 3", got)
	}
	if got := db.Support(New()); got != 8 {
		t.Errorf("T({}) = %d, want window size 8", got)
	}
	// Pattern ab¬c: contains a,b but not c.
	p := NewPattern(New(0, 1), New(2))
	if got := db.PatternSupport(p); got != 0 {
		t.Errorf("T(ab¬c) = %d, want 0", got)
	}
	// Pattern a¬b: r5, r9 → 2.
	p2 := NewPattern(New(0), New(1))
	if got := db.PatternSupport(p2); got != 2 {
		t.Errorf("T(a¬b) = %d, want 2", got)
	}
}

func TestDatabaseItems(t *testing.T) {
	db := NewDatabase([]Itemset{New(5, 1), New(3), New(1)})
	items := db.Items()
	want := []Item{1, 3, 5}
	if len(items) != len(want) {
		t.Fatalf("Items = %v", items)
	}
	for i := range want {
		if items[i] != want[i] {
			t.Fatalf("Items = %v, want %v", items, want)
		}
	}
}

func TestDatabaseItemSupports(t *testing.T) {
	db := NewDatabase([]Itemset{New(1, 2), New(2), New(2, 3)})
	got := db.ItemSupports()
	if got[1] != 1 || got[2] != 3 || got[3] != 1 {
		t.Errorf("ItemSupports = %v", got)
	}
}

func TestEmptyDatabase(t *testing.T) {
	db := NewDatabase(nil)
	if db.Len() != 0 {
		t.Error("empty database Len != 0")
	}
	if db.Support(New(1)) != 0 {
		t.Error("support in empty database != 0")
	}
	if len(db.Items()) != 0 {
		t.Error("Items in empty database not empty")
	}
}
