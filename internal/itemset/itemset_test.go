package itemset

import (
	"testing"
	"testing/quick"
)

func TestNewSortsAndDedups(t *testing.T) {
	s := New(3, 1, 2, 1, 3)
	want := []Item{1, 2, 3}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for i, it := range s.Items() {
		if it != want[i] {
			t.Errorf("Items()[%d] = %d, want %d", i, it, want[i])
		}
	}
}

func TestEmptyItemset(t *testing.T) {
	var zero Itemset
	if !zero.Empty() || zero.Len() != 0 {
		t.Error("zero Itemset not empty")
	}
	if !New().Equal(zero) {
		t.Error("New() != zero value")
	}
	if zero.Key() != "" {
		t.Error("empty Key not empty string")
	}
	if zero.Contains(0) {
		t.Error("empty Contains(0)")
	}
}

func TestFromSortedPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSorted on unsorted input did not panic")
		}
	}()
	FromSorted([]Item{2, 1})
}

func TestFromSortedPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSorted on duplicate input did not panic")
		}
	}()
	FromSorted([]Item{1, 1})
}

func TestContains(t *testing.T) {
	s := New(1, 5, 9)
	for _, tc := range []struct {
		item Item
		want bool
	}{{1, true}, {5, true}, {9, true}, {0, false}, {4, false}, {10, false}} {
		if got := s.Contains(tc.item); got != tc.want {
			t.Errorf("Contains(%d) = %v, want %v", tc.item, got, tc.want)
		}
	}
}

func TestContainsAll(t *testing.T) {
	s := New(1, 2, 3, 5)
	cases := []struct {
		sub  Itemset
		want bool
	}{
		{New(), true},
		{New(1), true},
		{New(1, 3), true},
		{New(1, 2, 3, 5), true},
		{New(4), false},
		{New(1, 4), false},
		{New(1, 2, 3, 5, 7), false},
	}
	for _, tc := range cases {
		if got := s.ContainsAll(tc.sub); got != tc.want {
			t.Errorf("ContainsAll(%v) = %v, want %v", tc.sub, got, tc.want)
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a := New(1, 2, 3)
	b := New(2, 3, 4)
	if got := a.Union(b); !got.Equal(New(1, 2, 3, 4)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(New(2, 3)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); !got.Equal(New(1)) {
		t.Errorf("Minus = %v", got)
	}
	if got := b.Minus(a); !got.Equal(New(4)) {
		t.Errorf("Minus = %v", got)
	}
}

func TestWithWithout(t *testing.T) {
	s := New(2, 4)
	if got := s.With(3); !got.Equal(New(2, 3, 4)) {
		t.Errorf("With(3) = %v", got)
	}
	if got := s.With(1); !got.Equal(New(1, 2, 4)) {
		t.Errorf("With(1) = %v", got)
	}
	if got := s.With(5); !got.Equal(New(2, 4, 5)) {
		t.Errorf("With(5) = %v", got)
	}
	if got := s.With(2); !got.Equal(s) {
		t.Errorf("With(existing) = %v", got)
	}
	if got := s.Without(2); !got.Equal(New(4)) {
		t.Errorf("Without(2) = %v", got)
	}
	if got := s.Without(7); !got.Equal(s) {
		t.Errorf("Without(absent) = %v", got)
	}
}

func TestWithDoesNotMutate(t *testing.T) {
	s := New(2, 4)
	_ = s.With(3)
	if !s.Equal(New(2, 4)) {
		t.Error("With mutated receiver")
	}
}

func TestKeyUniqueness(t *testing.T) {
	sets := []Itemset{
		New(), New(0), New(1), New(0, 1), New(0, 256),
		New(256), New(1, 2, 3), New(1, 2), New(3),
	}
	keys := map[string]Itemset{}
	for _, s := range sets {
		if prev, ok := keys[s.Key()]; ok {
			t.Errorf("key collision between %v and %v", prev, s)
		}
		keys[s.Key()] = s
	}
}

func TestKeyRoundTripProperty(t *testing.T) {
	f := func(a, b []uint16) bool {
		ia := make([]Item, len(a))
		for i, v := range a {
			ia[i] = Item(v)
		}
		ib := make([]Item, len(b))
		for i, v := range b {
			ib[i] = Item(v)
		}
		sa, sb := New(ia...), New(ib...)
		return (sa.Key() == sb.Key()) == sa.Equal(sb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	if got := New(0, 1, 2).String(); got != "{a,b,c}" {
		t.Errorf("String = %q", got)
	}
	if got := New(30).String(); got != "{i30}" {
		t.Errorf("String = %q", got)
	}
	if got := New().String(); got != "{}" {
		t.Errorf("String = %q", got)
	}
}

func TestSubsetsCount(t *testing.T) {
	s := New(1, 2, 3)
	n := 0
	s.Subsets(func(Itemset) bool { n++; return true })
	if n != 8 {
		t.Errorf("Subsets visited %d, want 8", n)
	}
}

func TestSubsetsEarlyStop(t *testing.T) {
	s := New(1, 2, 3)
	n := 0
	s.Subsets(func(Itemset) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop visited %d, want 3", n)
	}
}

func TestProperSubsets(t *testing.T) {
	s := New(1, 2, 3)
	var got []Itemset
	s.ProperSubsets(func(sub Itemset) bool {
		got = append(got, sub)
		return true
	})
	if len(got) != 6 {
		t.Fatalf("ProperSubsets visited %d, want 6", len(got))
	}
	for _, sub := range got {
		if sub.Len() == 0 || sub.Len() == 3 {
			t.Errorf("ProperSubsets yielded %v", sub)
		}
		if !s.ContainsAll(sub) {
			t.Errorf("ProperSubsets yielded non-subset %v", sub)
		}
	}
}

func TestSubsetsAreSubsetsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) > 6 {
			raw = raw[:6]
		}
		items := make([]Item, len(raw))
		for i, v := range raw {
			items[i] = Item(v)
		}
		s := New(items...)
		ok := true
		count := 0
		s.Subsets(func(sub Itemset) bool {
			count++
			if !s.ContainsAll(sub) {
				ok = false
			}
			return true
		})
		return ok && count == 1<<s.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnionCommutativeProperty(t *testing.T) {
	f := func(a, b []uint8) bool {
		ia := make([]Item, len(a))
		for i, v := range a {
			ia[i] = Item(v)
		}
		ib := make([]Item, len(b))
		for i, v := range b {
			ib[i] = Item(v)
		}
		sa, sb := New(ia...), New(ib...)
		u1, u2 := sa.Union(sb), sb.Union(sa)
		if !u1.Equal(u2) {
			return false
		}
		// Union contains both; intersection contained in both.
		if !u1.ContainsAll(sa) || !u1.ContainsAll(sb) {
			return false
		}
		in := sa.Intersect(sb)
		return sa.ContainsAll(in) && sb.ContainsAll(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinusDisjointProperty(t *testing.T) {
	f := func(a, b []uint8) bool {
		ia := make([]Item, len(a))
		for i, v := range a {
			ia[i] = Item(v)
		}
		ib := make([]Item, len(b))
		for i, v := range b {
			ib[i] = Item(v)
		}
		sa, sb := New(ia...), New(ib...)
		d := sa.Minus(sb)
		if !d.Intersect(sb).Empty() {
			return false
		}
		// d ∪ (sa ∩ sb) == sa
		return d.Union(sa.Intersect(sb)).Equal(sa)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
