package itemset

// Database is an ordered multiset of transaction records. In the stream
// setting a Database is the materialized content of one sliding window.
type Database struct {
	records []Itemset
}

// NewDatabase builds a database over the given records. The slice is used
// directly; callers must not modify it afterwards.
func NewDatabase(records []Itemset) *Database {
	return &Database{records: records}
}

// Len returns the number of records.
func (d *Database) Len() int { return len(d.records) }

// Record returns the i-th record.
func (d *Database) Record(i int) Itemset { return d.records[i] }

// Records returns the backing record slice; callers must not modify it.
func (d *Database) Records() []Itemset { return d.records }

// Support returns T_D(I): the number of records containing I as a subset.
func (d *Database) Support(i Itemset) int {
	n := 0
	for _, r := range d.records {
		if r.ContainsAll(i) {
			n++
		}
	}
	return n
}

// PatternSupport returns T_D(p): the number of records satisfying the
// generalized pattern p.
func (d *Database) PatternSupport(p Pattern) int {
	n := 0
	for _, r := range d.records {
		if p.Matches(r) {
			n++
		}
	}
	return n
}

// Items returns the universe of items appearing in at least one record, in
// ascending order.
func (d *Database) Items() []Item {
	seen := map[Item]bool{}
	for _, r := range d.records {
		for _, it := range r.Items() {
			seen[it] = true
		}
	}
	out := make([]Item, 0, len(seen))
	for it := range seen {
		out = append(out, it)
	}
	// Insertion sort is fine: item universes are small relative to records.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ItemSupports returns the support of every single item in the database.
func (d *Database) ItemSupports() map[Item]int {
	counts := map[Item]int{}
	for _, r := range d.records {
		for _, it := range r.Items() {
			counts[it]++
		}
	}
	return counts
}
