package itemset

import "strings"

// Pattern is a generalized itemset: a conjunction of items that must be
// present (Positive) and items that must be absent (Negative). The paper
// writes a pattern such as a·b·c̄ for "contains a and b but not c".
//
// A Pattern with an empty Negative part is equivalent to its Positive
// itemset. Positive and Negative must be disjoint; NewPattern enforces this.
type Pattern struct {
	Positive Itemset
	Negative Itemset
}

// NewPattern builds a pattern from positive and negated item sets. It panics
// if the two overlap, because such a pattern is unsatisfiable by construction
// and always indicates a caller bug.
func NewPattern(positive, negative Itemset) Pattern {
	if !positive.Intersect(negative).Empty() {
		panic("itemset: pattern with overlapping positive and negative parts")
	}
	return Pattern{Positive: positive, Negative: negative}
}

// Matches reports whether the record satisfies the pattern: it contains all
// positive items and none of the negative ones.
func (p Pattern) Matches(record Itemset) bool {
	if !record.ContainsAll(p.Positive) {
		return false
	}
	for _, it := range p.Negative.Items() {
		if record.Contains(it) {
			return false
		}
	}
	return true
}

// Len returns the total number of literals (positive plus negated).
func (p Pattern) Len() int { return p.Positive.Len() + p.Negative.Len() }

// Equal reports whether two patterns have identical positive and negative
// parts.
func (p Pattern) Equal(other Pattern) bool {
	return p.Positive.Equal(other.Positive) && p.Negative.Equal(other.Negative)
}

// Key returns a map key unique to the pattern.
func (p Pattern) Key() string {
	return p.Positive.Key() + "|" + p.Negative.Key()
}

// String renders the pattern in the paper's notation, e.g. "ab¬c" for the
// pattern with positive {a,b} and negative {c}.
func (p Pattern) String() string {
	var b strings.Builder
	for _, it := range p.Positive.Items() {
		b.WriteString(itemString(it))
	}
	for _, it := range p.Negative.Items() {
		b.WriteString("¬")
		b.WriteString(itemString(it))
	}
	if b.Len() == 0 {
		return "∅"
	}
	return b.String()
}
