// Package ndi implements non-derivable itemset analysis (Calders &
// Goethals, PKDD 2002 — the paper's reference [16] and the engine behind
// its "estimating itemset support" attack technique).
//
// An itemset is DERIVABLE when the deduction bounds computed from its
// subsets' supports collapse to a point: its support carries no new
// information and an adversary recovers it exactly — which is precisely how
// the intra-window attack completes unpublished supports. The set of
// non-derivable frequent itemsets is therefore both a lossless condensed
// representation of the frequent set (the original NDI use) and a measure
// of a window's inference attack surface (this repository's use): every
// derivable itemset is a free gift to the adversary.
package ndi

import (
	"fmt"

	"repro/internal/itemset"
	"repro/internal/lattice"
	"repro/internal/mining"
)

// Analysis classifies the frequent itemsets of one window.
type Analysis struct {
	// NonDerivable are the frequent itemsets whose subset-deduction bounds
	// do not pin their support (the NDI condensed representation).
	NonDerivable []mining.FrequentItemset
	// Derivable are the frequent itemsets an adversary reconstructs exactly
	// from the others — publication adds no information but plenty of
	// inference material.
	Derivable []mining.FrequentItemset
	// Widths maps itemset keys to the width (Hi−Lo) of the deduction
	// interval; width 0 means derivable.
	Widths map[string]int
}

// DerivableCount returns the number of derivable frequent itemsets.
func (a *Analysis) DerivableCount() int { return len(a.Derivable) }

// Analyze splits the frequent itemsets of res into derivable and
// non-derivable, computing each itemset's deduction bounds from its proper
// subsets' supports (all available in res by the Apriori property) with the
// window size answering for the empty set. Singletons are never derivable:
// their only subset is the empty set, whose bounds [0, N] cannot collapse
// unless N = 0.
func Analyze(res *mining.Result, windowSize int) (*Analysis, error) {
	if res == nil {
		return nil, fmt.Errorf("ndi: nil mining result")
	}
	if windowSize < 0 {
		return nil, fmt.Errorf("ndi: negative window size %d", windowSize)
	}
	lookup := func(s itemset.Itemset) (int, bool) {
		if s.Empty() {
			return windowSize, true
		}
		return res.Support(s)
	}
	a := &Analysis{Widths: make(map[string]int, res.Len())}
	for _, fi := range res.Itemsets {
		iv, err := lattice.Bounds(fi.Set, lookup, windowSize)
		if err != nil {
			return nil, err
		}
		width := iv.Hi - iv.Lo
		a.Widths[fi.Set.Key()] = width
		if width == 0 {
			a.Derivable = append(a.Derivable, fi)
		} else {
			a.NonDerivable = append(a.NonDerivable, fi)
		}
	}
	return a, nil
}

// Condense returns only the non-derivable frequent itemsets as a Result —
// the NDI condensed representation: every pruned support is reconstructible
// by the deduction rules.
func Condense(res *mining.Result, windowSize int) (*mining.Result, error) {
	a, err := Analyze(res, windowSize)
	if err != nil {
		return nil, err
	}
	return mining.NewResult(res.MinSupport, a.NonDerivable), nil
}

// Reconstruct recovers the support of target from a condensed result by
// iterated deduction: bounds are computed against the condensed supports
// plus everything already reconstructed, repeating until the target pins or
// no progress is possible. It reports ok=false if the target cannot be
// reconstructed (it was non-derivable, or outside the frequent universe).
func Reconstruct(condensed *mining.Result, windowSize int, target itemset.Itemset) (int, bool, error) {
	if v, ok := condensed.Support(target); ok {
		return v, true, nil
	}
	known := map[string]int{}
	sets := map[string]itemset.Itemset{}
	for _, fi := range condensed.Itemsets {
		known[fi.Set.Key()] = fi.Support
		sets[fi.Set.Key()] = fi.Set
	}
	lookup := func(s itemset.Itemset) (int, bool) {
		if s.Empty() {
			return windowSize, true
		}
		v, ok := known[s.Key()]
		return v, ok
	}
	// Candidate queue: subsets-first order over the closure of target's
	// subset lattice restricted to itemsets over target's items plus known
	// sets; simplest complete strategy for the sizes involved: iterate
	// deduction over all subsets of target until fixpoint.
	if target.Len() > 16 {
		return 0, false, fmt.Errorf("ndi: target %v too large to reconstruct", target)
	}
	for pass := 0; pass < target.Len()+1; pass++ {
		progress := false
		target.Subsets(func(sub itemset.Itemset) bool {
			if sub.Empty() || lookupHas(known, sub) {
				return true
			}
			iv, err := lattice.Bounds(sub, lookup, windowSize)
			if err != nil {
				return true
			}
			if iv.Tight() {
				known[sub.Key()] = iv.Lo
				progress = true
			}
			return true
		})
		if v, ok := known[target.Key()]; ok {
			return v, true, nil
		}
		if !progress {
			break
		}
	}
	return 0, false, nil
}

func lookupHas(known map[string]int, s itemset.Itemset) bool {
	_, ok := known[s.Key()]
	return ok
}
