package ndi

import (
	"testing"

	"repro/internal/data"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/rng"
)

func mustMine(t *testing.T, db *itemset.Database, c int) *mining.Result {
	t.Helper()
	res, err := mining.Eclat(db, c)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(nil, 10); err == nil {
		t.Error("nil result accepted")
	}
	if _, err := Analyze(mining.NewResult(1, nil), -1); err == nil {
		t.Error("negative window accepted")
	}
}

// Hand case: N=10, T(a)=10 (a in every record), T(b)=6, T(ab)=6. Since every
// record has a, T(ab) is forced to T(b): ab is derivable.
func TestAnalyzeDerivableHandCase(t *testing.T) {
	var recs []itemset.Itemset
	for i := 0; i < 6; i++ {
		recs = append(recs, itemset.New(0, 1))
	}
	for i := 0; i < 4; i++ {
		recs = append(recs, itemset.New(0))
	}
	db := itemset.NewDatabase(recs)
	res := mustMine(t, db, 1)
	a, err := Analyze(res, db.Len())
	if err != nil {
		t.Fatal(err)
	}
	derivable := map[string]bool{}
	for _, fi := range a.Derivable {
		derivable[fi.Set.Key()] = true
	}
	if !derivable[itemset.New(0, 1).Key()] {
		t.Errorf("ab should be derivable; widths=%v", a.Widths)
	}
	if derivable[itemset.New(0).Key()] || derivable[itemset.New(1).Key()] {
		t.Error("singletons must never be derivable in a non-empty window")
	}
	if a.Widths[itemset.New(0, 1).Key()] != 0 {
		t.Error("derivable itemset has non-zero width")
	}
}

// Partition property: NonDerivable ∪ Derivable == all frequent itemsets.
func TestAnalyzePartition(t *testing.T) {
	gen := data.WebViewLike(51)
	db := itemset.NewDatabase(gen.Generate(800))
	res := mustMine(t, db, 15)
	a, err := Analyze(res, db.Len())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.NonDerivable)+len(a.Derivable) != res.Len() {
		t.Fatalf("partition broken: %d + %d != %d",
			len(a.NonDerivable), len(a.Derivable), res.Len())
	}
	for _, fi := range a.Derivable {
		if a.Widths[fi.Set.Key()] != 0 {
			t.Errorf("derivable %v has width %d", fi.Set, a.Widths[fi.Set.Key()])
		}
	}
	for _, fi := range a.NonDerivable {
		if a.Widths[fi.Set.Key()] == 0 {
			t.Errorf("non-derivable %v has width 0", fi.Set)
		}
	}
}

// The NDI losslessness theorem, empirically: every derivable itemset's
// support is reconstructible from the condensed representation.
func TestCondenseLossless(t *testing.T) {
	src := rng.New(61)
	for trial := 0; trial < 10; trial++ {
		recs := make([]itemset.Itemset, 30)
		for i := range recs {
			var items []itemset.Item
			for b := 0; b < 5; b++ {
				if src.Intn(2) == 1 {
					items = append(items, itemset.Item(b))
				}
			}
			recs[i] = itemset.New(items...)
		}
		db := itemset.NewDatabase(recs)
		res := mustMine(t, db, 2)
		condensed, err := Condense(res, db.Len())
		if err != nil {
			t.Fatal(err)
		}
		for _, fi := range res.Itemsets {
			got, ok, err := Reconstruct(condensed, db.Len(), fi.Set)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("trial %d: %v not reconstructible from condensed set", trial, fi.Set)
			}
			if got != fi.Support {
				t.Fatalf("trial %d: reconstructed T(%v) = %d, truth %d",
					trial, fi.Set, got, fi.Support)
			}
		}
	}
}

func TestReconstructDirectHit(t *testing.T) {
	res := mining.NewResult(1, []mining.FrequentItemset{{Set: itemset.New(1), Support: 5}})
	got, ok, err := Reconstruct(res, 10, itemset.New(1))
	if err != nil || !ok || got != 5 {
		t.Errorf("direct lookup failed: %d %v %v", got, ok, err)
	}
}

func TestReconstructUnknown(t *testing.T) {
	res := mining.NewResult(1, []mining.FrequentItemset{{Set: itemset.New(1), Support: 5}})
	_, ok, err := Reconstruct(res, 10, itemset.New(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("reconstructed an itemset with no information available")
	}
}

// Attack-surface connection: windows with many derivable itemsets mean the
// adversary reconstructs hidden supports for free. Verify the count is
// meaningful on a realistic stream (neither zero nor everything).
func TestDerivableCountOnStream(t *testing.T) {
	gen := data.POSLike(71)
	db := itemset.NewDatabase(gen.Generate(1500))
	res := mustMine(t, db, 20)
	a, err := Analyze(res, db.Len())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("POS window: %d frequent, %d derivable (attack surface), %d non-derivable",
		res.Len(), a.DerivableCount(), len(a.NonDerivable))
	if len(a.NonDerivable) == 0 {
		t.Error("everything derivable — impossible with frequent singletons")
	}
}
