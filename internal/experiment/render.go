package experiment

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// Scatter reports whether the panel's series disagree on x-values (Fig. 7's
// ropp/rrpp frontier); scatter panels render one (series, x, y) row per
// point instead of a joined table.
func (p Panel) Scatter() bool {
	if len(p.Series) < 2 {
		return false
	}
	first := p.Series[0]
	for _, s := range p.Series[1:] {
		if len(s.Points) != len(first.Points) {
			return true
		}
		for i := range s.Points {
			if s.Points[i].X != first.Points[i].X {
				return true
			}
		}
	}
	return false
}

// Table renders the panel as an aligned text table (the cmd/experiments
// default output).
func (p Panel) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", p.Title)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "%s", p.XLabel)
	for _, s := range p.Series {
		fmt.Fprintf(w, "\t%s", s.Name)
	}
	fmt.Fprintln(w)
	if p.Scatter() {
		fmt.Fprintf(w, "(scatter: x=%s, y=%s)\n", p.XLabel, p.YLabel)
		for _, s := range p.Series {
			for _, pt := range s.Points {
				fmt.Fprintf(w, "%s\t%.4g\t%.4g\n", s.Name, pt.X, pt.Y)
			}
		}
		w.Flush()
		return b.String()
	}
	rows := 0
	for _, s := range p.Series {
		if len(s.Points) > rows {
			rows = len(s.Points)
		}
	}
	for r := 0; r < rows; r++ {
		fmt.Fprintf(w, "%.4g", p.Series[0].Points[r].X)
		for _, s := range p.Series {
			if r < len(s.Points) {
				fmt.Fprintf(w, "\t%.5g", s.Points[r].Y)
			} else {
				fmt.Fprintf(w, "\t-")
			}
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return b.String()
}

// CSV renders the panel as comma-separated values with a header row:
// panel,series,x,y — one row per point, machine-readable for downstream
// plotting.
func (p Panel) CSV() string {
	var b strings.Builder
	b.WriteString("panel,series,x,y\n")
	for _, s := range p.Series {
		for _, pt := range s.Points {
			fmt.Fprintf(&b, "%s,%s,%g,%g\n", csvEscape(p.Title), csvEscape(s.Name), pt.X, pt.Y)
		}
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
