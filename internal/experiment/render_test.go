package experiment

import (
	"strings"
	"testing"
)

func samplePanel() Panel {
	return Panel{
		Title:  "Fig-X test",
		XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "A", Points: []Point{{1, 0.5}, {2, 0.6}}},
			{Name: "B", Points: []Point{{1, 0.7}, {2, 0.8}}},
		},
	}
}

func TestScatterDetection(t *testing.T) {
	p := samplePanel()
	if p.Scatter() {
		t.Error("aligned panel reported scatter")
	}
	p.Series[1].Points[0].X = 1.5
	if !p.Scatter() {
		t.Error("misaligned panel not reported scatter")
	}
	single := Panel{Series: []Series{{Name: "A"}}}
	if single.Scatter() {
		t.Error("single series reported scatter")
	}
	lenDiff := samplePanel()
	lenDiff.Series[1].Points = lenDiff.Series[1].Points[:1]
	if !lenDiff.Scatter() {
		t.Error("length-mismatched panel not reported scatter")
	}
}

func TestTableRendering(t *testing.T) {
	got := samplePanel().Table()
	for _, want := range []string{"== Fig-X test ==", "x", "A", "B", "0.5", "0.8"} {
		if !strings.Contains(got, want) {
			t.Errorf("table missing %q:\n%s", want, got)
		}
	}
	// Two data rows plus header + title.
	if lines := strings.Count(got, "\n"); lines != 4 {
		t.Errorf("table has %d lines:\n%s", lines, got)
	}
}

func TestTableScatterRendering(t *testing.T) {
	p := samplePanel()
	p.Series[1].Points[1].X = 9 // force scatter
	got := p.Table()
	if !strings.Contains(got, "(scatter:") {
		t.Errorf("scatter marker missing:\n%s", got)
	}
	// One row per (series, point): 4 rows.
	if !strings.Contains(got, "B") || !strings.Contains(got, "9") {
		t.Errorf("scatter rows missing:\n%s", got)
	}
}

func TestTableRaggedSeries(t *testing.T) {
	p := samplePanel()
	p.Series[1].Points = append(p.Series[1].Points, Point{3, 0.9})
	// Ragged but x-aligned on the shared prefix -> scatter (length mismatch).
	if !p.Scatter() {
		t.Skip("ragged panel classified scatter; joined-table path not reachable")
	}
}

func TestCSVRendering(t *testing.T) {
	got := samplePanel().CSV()
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if lines[0] != "panel,series,x,y" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 5 {
		t.Fatalf("%d lines, want 5:\n%s", len(lines), got)
	}
	if lines[1] != "Fig-X test,A,1,0.5" {
		t.Errorf("row = %q", lines[1])
	}
}

func TestCSVEscaping(t *testing.T) {
	p := Panel{
		Title:  `with, comma and "quote"`,
		Series: []Series{{Name: "s", Points: []Point{{1, 2}}}},
	}
	got := p.CSV()
	if !strings.Contains(got, `"with, comma and ""quote""",s,1,2`) {
		t.Errorf("escaping wrong:\n%s", got)
	}
}
