package experiment

import (
	"testing"

	"repro/internal/core"
)

// small returns a fast configuration for tests: tiny windows, few of them.
func small(scheme core.Scheme, withAttack bool) Config {
	return Config{
		Dataset:    Datasets()[0], // WebView1 surrogate
		WindowSize: 300,
		Windows:    6,
		Stride:     5,
		Params:     core.Params{Epsilon: 0.04, Delta: 0.5, MinSupport: 12, VulnSupport: 3},
		Scheme:     scheme,
		Seed:       7,
		WithAttack: withAttack,
	}
}

func TestRunValidation(t *testing.T) {
	bad := []Config{
		{},
		{Dataset: Datasets()[0]},
		{Dataset: Datasets()[0], WindowSize: 10},
		{Dataset: Datasets()[0], WindowSize: 10, Windows: 1, Stride: -1,
			Params: core.Params{Epsilon: 0.04, Delta: 0.5, MinSupport: 12, VulnSupport: 3}},
		{Dataset: Datasets()[0], WindowSize: 10, Windows: 1, RatioK: 2,
			Params: core.Params{Epsilon: 0.04, Delta: 0.5, MinSupport: 12, VulnSupport: 3}},
		{Dataset: Datasets()[0], WindowSize: 10, Windows: 1}, // invalid params
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestRunProducesGuarantees(t *testing.T) {
	cfg := small(core.Basic{}, true)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows != cfg.Windows {
		t.Errorf("measured %d windows, want %d", res.Windows, cfg.Windows)
	}
	if res.AvgPred > cfg.Params.Epsilon {
		t.Errorf("avg_pred %v exceeds ε %v", res.AvgPred, cfg.Params.Epsilon)
	}
	if res.AvgPred == 0 {
		t.Error("avg_pred is exactly zero — no perturbation happened")
	}
	if res.PhvWindows > 0 && res.AvgPrig < cfg.Params.Delta {
		t.Errorf("avg_prig %v below δ %v with %d vulnerable patterns",
			res.AvgPrig, cfg.Params.Delta, res.PhvTotal)
	}
	if res.AvgROPP < 0 || res.AvgROPP > 1 || res.AvgRRPP < 0 || res.AvgRRPP > 1 {
		t.Errorf("rates out of range: ropp %v rrpp %v", res.AvgROPP, res.AvgRRPP)
	}
	if res.FrequentAvg <= 0 {
		t.Error("no frequent itemsets published")
	}
}

func TestRunSchemesDiffer(t *testing.T) {
	// OP and RP must actually behave differently on the same stream.
	op, err := Run(small(core.OrderPreserving{Gamma: 2}, false))
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Run(small(core.RatioPreserving{}, false))
	if err != nil {
		t.Fatal(err)
	}
	if op.AvgROPP == rp.AvgROPP && op.AvgRRPP == rp.AvgRRPP {
		t.Error("OP and RP produced identical utility metrics — schemes not wired through")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(small(core.Hybrid{Lambda: 0.4}, false))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(small(core.Hybrid{Lambda: 0.4}, false))
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgPred != b.AvgPred || a.AvgROPP != b.AvgROPP || a.AvgRRPP != b.AvgRRPP {
		t.Error("same seed produced different results")
	}
}

func TestVariantsShape(t *testing.T) {
	vs := Variants(2)
	if len(vs) != 4 {
		t.Fatalf("%d variants", len(vs))
	}
	names := map[string]bool{}
	for _, v := range vs {
		if v.Scheme == nil {
			t.Errorf("variant %s has nil scheme", v.Name)
		}
		names[v.Name] = true
	}
	for _, want := range []string{"Basic", "Opt λ=1", "Opt λ=0.4", "Opt λ=0"} {
		if !names[want] {
			t.Errorf("missing variant %q", want)
		}
	}
}

func TestFigureDispatch(t *testing.T) {
	if _, err := Figure(3, FigureOptions{}); err == nil {
		t.Error("figure 3 accepted")
	}
	if _, err := Figure(9, FigureOptions{}); err == nil {
		t.Error("figure 9 accepted")
	}
}

// A miniature Fig5 run: panels have the right shape and the headline claim
// (OP best at order, RP best at ratio) holds even at reduced scale.
func TestFig5Miniature(t *testing.T) {
	if testing.Short() {
		t.Skip("miniature figure still costs a few seconds")
	}
	panels, err := Fig5(FigureOptions{
		WindowSize:    400,
		Windows:       8,
		Stride:        10,
		DatasetFilter: "WebView1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 2 {
		t.Fatalf("%d panels, want 2 (one dataset)", len(panels))
	}
	for _, p := range panels {
		if len(p.Series) != 4 {
			t.Fatalf("panel %q has %d series", p.Title, len(p.Series))
		}
		for _, s := range p.Series {
			if len(s.Points) != 5 {
				t.Fatalf("series %q has %d points", s.Name, len(s.Points))
			}
		}
	}
	// Identify series by name.
	find := func(p Panel, name string) Series {
		for _, s := range p.Series {
			if s.Name == name {
				return s
			}
		}
		t.Fatalf("series %q missing", name)
		return Series{}
	}
	mean := func(s Series) float64 {
		sum := 0.0
		for _, pt := range s.Points {
			sum += pt.Y
		}
		return sum / float64(len(s.Points))
	}
	roppPanel, rrppPanel := panels[0], panels[1]
	if mean(find(roppPanel, "Opt λ=1")) < mean(find(roppPanel, "Opt λ=0")) {
		t.Error("order-preserving scheme lost to ratio-preserving on ropp")
	}
	if mean(find(rrppPanel, "Opt λ=0")) < mean(find(rrppPanel, "Opt λ=1")) {
		t.Error("ratio-preserving scheme lost to order-preserving on rrpp")
	}
}

func TestRunPrecomputedThresholdMismatch(t *testing.T) {
	w, err := Precompute(Datasets()[0], 200, 2, 10, 12, 3, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	bad := core.Params{Epsilon: 0.04, Delta: 0.5, MinSupport: 20, VulnSupport: 3}
	if _, err := RunPrecomputed(w, bad, core.Basic{}, EvalOptions{Seed: 7}); err == nil {
		t.Error("threshold mismatch accepted")
	}
}

func TestEstimateBreachExactOnRawOutput(t *testing.T) {
	// Against raw (unperturbed) output the estimate must equal the breach's
	// true derived support whenever the lattice is fully published.
	w, err := Precompute(Datasets()[0], 300, 4, 10, 12, 3, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, wd := range w.Data {
		raw := core.NewRawOutput(wd.Mined, w.WindowSize)
		for _, b := range wd.Breaches {
			e, ok := EstimateBreach(b, raw, nil)
			if !ok {
				continue // lattice not fully published: outside the metric
			}
			checked++
			if e != float64(b.Support) {
				t.Fatalf("raw-output estimate %v != derived %d for %v", e, b.Support, b.Pattern)
			}
		}
	}
	if checked == 0 {
		t.Skip("no fully-published breaches in this fixture")
	}
}

func TestEstimateBreachKnowledgeOverride(t *testing.T) {
	w, err := Precompute(Datasets()[0], 300, 4, 10, 12, 3, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	// Find one estimable breach, then feed knowledge that shifts a lattice
	// member by +10: the estimate must move accordingly.
	for _, wd := range w.Data {
		raw := core.NewRawOutput(wd.Mined, w.WindowSize)
		for _, b := range wd.Breaches {
			base, ok := EstimateBreach(b, raw, nil)
			if !ok || b.I.Equal(b.J) {
				continue
			}
			trueI, _ := raw.Support(b.I)
			know := map[string]int{b.I.Key(): trueI + 10}
			shifted, ok := EstimateBreach(b, raw, know)
			if !ok {
				t.Fatal("knowledge removed estimability")
			}
			// I contributes with sign +1 (distance 0).
			if shifted != base+10 {
				t.Fatalf("knowledge shift: base %v, shifted %v", base, shifted)
			}
			return
		}
	}
	t.Skip("no estimable breach in fixture")
}

// Exercise every figure runner end to end at micro scale: panel/series
// shapes must match the sweeps they encode.
func TestAllFiguresMicroScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every figure, a few seconds")
	}
	opts := FigureOptions{
		WindowSize:    300,
		Windows:       2,
		Stride:        40,
		Seed:          3,
		DatasetFilter: "WebView1",
		PrivacySeeds:  2,
	}
	wantSeries := map[int]int{4: 4, 5: 4, 6: 1, 7: 3, 8: 3}
	wantPanels := map[int]int{4: 2, 5: 2, 6: 1, 7: 1, 8: 1}
	wantPoints := map[int]int{4: 5, 5: 5, 6: 7, 7: 5, 8: 5}
	for fig := 4; fig <= 8; fig++ {
		o := opts
		if fig == 8 {
			o.WindowSize = 500 // avoid the 2000->5000 default bump
		}
		panels, err := Figure(fig, o)
		if err != nil {
			t.Fatalf("fig %d: %v", fig, err)
		}
		if len(panels) != wantPanels[fig] {
			t.Fatalf("fig %d: %d panels, want %d", fig, len(panels), wantPanels[fig])
		}
		for _, p := range panels {
			if len(p.Series) != wantSeries[fig] {
				t.Errorf("fig %d panel %q: %d series, want %d",
					fig, p.Title, len(p.Series), wantSeries[fig])
			}
			for _, s := range p.Series {
				if len(s.Points) != wantPoints[fig] {
					t.Errorf("fig %d series %q: %d points, want %d",
						fig, s.Name, len(s.Points), wantPoints[fig])
				}
				for _, pt := range s.Points {
					if pt.Y < 0 {
						t.Errorf("fig %d series %q: negative y %v", fig, s.Name, pt.Y)
					}
				}
			}
		}
	}
}

func TestFigureOptionsDatasetFilter(t *testing.T) {
	o := FigureOptions{DatasetFilter: "nope"}
	if ds := o.datasets(); len(ds) != 0 {
		t.Errorf("bogus filter matched %d datasets", len(ds))
	}
	o = FigureOptions{DatasetFilter: "POS"}
	if ds := o.datasets(); len(ds) != 1 || ds[0].Name != "POS" {
		t.Errorf("POS filter gave %v", ds)
	}
	o = FigureOptions{}
	if ds := o.datasets(); len(ds) != 2 {
		t.Errorf("no filter gave %d datasets", len(ds))
	}
}
