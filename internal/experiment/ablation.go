package experiment

import (
	"fmt"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/itemset"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/suppress"
)

// AblationKnowledge measures how the privacy guarantee degrades as the
// adversary acquires knowledge points (Prior Knowledge 3): for each k in
// ks, the adversary is granted the exact true supports of the k most
// frequent itemsets of every window before estimating the vulnerable
// patterns. The paper's prig definition anticipates exactly this: each
// knowledge point replaces one itemset's σ² with zero in the inference
// variance.
//
// The precompute must have run with attack. Returns one point per k:
// (k, avg_prig).
func AblationKnowledge(w *Windows, params core.Params, scheme core.Scheme, seed uint64, ks []int) (Series, error) {
	if err := params.Validate(); err != nil {
		return Series{}, err
	}
	s := Series{Name: "avg_prig vs knowledge points"}
	for _, k := range ks {
		if k < 0 {
			return Series{}, fmt.Errorf("experiment: negative knowledge count %d", k)
		}
		pub, err := core.NewPublisher(params, scheme, rng.New(seed^0x5bf0f5))
		if err != nil {
			return Series{}, err
		}
		var prigs []float64
		for _, wd := range w.Data {
			if len(wd.Breaches) == 0 {
				continue
			}
			out, err := pub.Publish(wd.Mined, w.WindowSize)
			if err != nil {
				return Series{}, err
			}
			// Grant the adversary the top-k true supports of this window.
			know := make(map[string]int, k)
			for i := 0; i < k && i < wd.Mined.Len(); i++ {
				fi := wd.Mined.Itemsets[i] // sorted by descending support
				know[fi.Set.Key()] = fi.Support
			}
			ests := make([]metrics.PatternEstimate, 0, len(wd.Breaches))
			for _, b := range wd.Breaches {
				e, ok := EstimateBreach(b, out, know)
				if !ok {
					continue
				}
				ests = append(ests, metrics.PatternEstimate{True: b.Support, Estimate: e})
			}
			if len(ests) > 0 {
				prigs = append(prigs, metrics.AvgPrig(ests))
			}
		}
		s.Points = append(s.Points, Point{X: float64(k), Y: metrics.Mean(prigs)})
	}
	return s, nil
}

// SuppressionComparison quantifies §I's argument against the
// detecting-then-removing baseline on precomputed windows: per window it
// measures the fraction of published itemsets the suppression baseline
// deletes and the wall-clock of its detect→remove loop, against Butterfly's
// zero deletions, ε-bounded noise, and perturbation cost.
type SuppressionComparison struct {
	// Windows measured.
	Windows int
	// SuppressedFrac is the mean fraction of itemsets deleted per window.
	SuppressedFrac float64
	// SuppressRounds is the mean detect→remove iterations per window.
	SuppressRounds float64
	// SuppressTime is the total suppression wall-clock.
	SuppressTime time.Duration
	// ButterflyPred is Butterfly's avg_pred on the same windows (its whole
	// utility cost — no itemset is ever deleted).
	ButterflyPred float64
	// ButterflyTime is the total Butterfly perturbation wall-clock
	// (optimization + draws).
	ButterflyTime time.Duration
}

// AblationSuppression runs the comparison. The precompute needs no attack
// pass: suppression re-detects internally.
func AblationSuppression(w *Windows, params core.Params, scheme core.Scheme, seed uint64) (SuppressionComparison, error) {
	if err := params.Validate(); err != nil {
		return SuppressionComparison{}, err
	}
	pub, err := core.NewPublisher(params, scheme, rng.New(seed^0x5bf0f5))
	if err != nil {
		return SuppressionComparison{}, err
	}
	opts := attack.Options{VulnSupport: params.VulnSupport}

	var cmp SuppressionComparison
	var preds []float64
	for _, wd := range w.Data {
		if wd.Mined.Len() == 0 {
			continue
		}
		t0 := time.Now()
		rep, err := suppress.Sanitize(wd.Mined, w.WindowSize, opts)
		cmp.SuppressTime += time.Since(t0)
		if err != nil {
			return SuppressionComparison{}, err
		}
		cmp.SuppressedFrac += float64(len(rep.Suppressed)) / float64(wd.Mined.Len())
		cmp.SuppressRounds += float64(rep.Rounds)

		t0 = time.Now()
		out, err := pub.Publish(wd.Mined, w.WindowSize)
		cmp.ButterflyTime += time.Since(t0)
		if err != nil {
			return SuppressionComparison{}, err
		}
		pairs := make([]metrics.Pair, 0, wd.Mined.Len())
		for _, fi := range wd.Mined.Itemsets {
			san, _ := out.Support(fi.Set)
			pairs = append(pairs, metrics.Pair{True: fi.Support, Sanitized: san})
		}
		preds = append(preds, metrics.AvgPred(pairs))
		cmp.Windows++
	}
	if cmp.Windows > 0 {
		cmp.SuppressedFrac /= float64(cmp.Windows)
		cmp.SuppressRounds /= float64(cmp.Windows)
	}
	cmp.ButterflyPred = metrics.Mean(preds)
	return cmp, nil
}

// AblationRepublication demonstrates why consistent republication (Prior
// Knowledge 2) is load-bearing: it publishes the same windows twice — once
// with the republication cache, once redrawing every window — and measures
// the averaging adversary's error on each stable itemset (one that keeps
// its support across all windows): the mean of its published values versus
// its true support.
//
// Returns two series over the number of observed windows: the averaging
// adversary's MSE with the cache (flat at full variance) and without it
// (decaying like σ²/n).
func AblationRepublication(w *Windows, params core.Params, scheme core.Scheme, seed uint64) ([]Series, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	run := func(cached bool) (Series, error) {
		name := "with republication cache"
		if !cached {
			name = "without cache (insecure)"
		}
		s := Series{Name: name}
		pub, err := core.NewPublisher(params, scheme, rng.New(seed^0x5bf0f5))
		if err != nil {
			return Series{}, err
		}
		pub.SetRepublicationCache(cached)

		// Track the running mean of published values for itemsets whose
		// true support never changes; at each window count, record the mean
		// squared relative deviation of that running mean from the truth.
		type track struct {
			set   itemset.Itemset
			truth int
			sum   float64
			n     int
			live  bool
		}
		tracks := make([]*track, 0, w.Data[0].Mined.Len())
		for _, fi := range w.Data[0].Mined.Itemsets {
			tracks = append(tracks, &track{set: fi.Set, truth: fi.Support, live: true})
		}
		for wi, wd := range w.Data {
			out, err := pub.Publish(wd.Mined, w.WindowSize)
			if err != nil {
				return Series{}, err
			}
			var sumSq float64
			var count int
			for _, tr := range tracks {
				if !tr.live {
					continue
				}
				truth, ok := wd.Mined.Support(tr.set)
				if !ok || truth != tr.truth {
					tr.live = false // support changed: averaging restarts anyway
					continue
				}
				san, ok := out.Support(tr.set)
				if !ok {
					tr.live = false
					continue
				}
				tr.sum += float64(san)
				tr.n++
				avg := tr.sum / float64(tr.n)
				d := avg - float64(tr.truth)
				sumSq += d * d
				count++
			}
			if count > 0 {
				s.Points = append(s.Points, Point{X: float64(wi + 1), Y: sumSq / float64(count)})
			}
		}
		return s, nil
	}

	withCache, err := run(true)
	if err != nil {
		return nil, err
	}
	without, err := run(false)
	if err != nil {
		return nil, err
	}
	return []Series{withCache, without}, nil
}
