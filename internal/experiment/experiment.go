// Package experiment drives the end-to-end measurement pipeline behind every
// figure of the Butterfly paper's evaluation (§VII): stream generation →
// incremental mining → perturbation → (optionally) inference attack →
// privacy/utility metrics, averaged over a run of consecutive windows.
//
// Mining and the clean-output breach analysis depend only on the stream and
// the thresholds (C, K), not on the perturbation setting, so Precompute
// materializes them once and RunPrecomputed evaluates many (ε, δ, scheme)
// settings against the same windows — the layout every figure sweep uses.
package experiment

import (
	"fmt"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/itemset"
	"repro/internal/lattice"
	"repro/internal/metrics"
	"repro/internal/mining"
	"repro/internal/mining/moment"
	"repro/internal/rng"
)

// Dataset names a stream generator.
type Dataset struct {
	Name string
	Gen  func(seed uint64) *data.Generator
}

// Datasets returns the two evaluation streams: the BMS-WebView-1 and
// BMS-POS surrogates.
func Datasets() []Dataset {
	return []Dataset{
		{Name: "WebView1", Gen: data.WebViewLike},
		{Name: "POS", Gen: data.POSLike},
	}
}

// Variant names one Butterfly configuration under test.
type Variant struct {
	Name   string
	Scheme core.Scheme
}

// Variants returns the four configurations every figure compares: basic,
// order-preserving (λ=1), hybrid λ=0.4 and ratio-preserving (λ=0), with the
// given order-preserving lookback γ.
func Variants(gamma int) []Variant {
	op := core.OrderPreserving{Gamma: gamma}
	return []Variant{
		{Name: "Basic", Scheme: core.Basic{}},
		{Name: "Opt λ=1", Scheme: op},
		{Name: "Opt λ=0.4", Scheme: core.Hybrid{Lambda: 0.4, Order: op}},
		{Name: "Opt λ=0", Scheme: core.RatioPreserving{}},
	}
}

// Config describes one self-contained measurement run.
type Config struct {
	// Dataset supplies the stream.
	Dataset Dataset
	// WindowSize is the sliding window H.
	WindowSize int
	// Windows is the number of published windows measured.
	Windows int
	// Stride is the number of record slides between publications (>= 1).
	Stride int
	// Params is the Butterfly calibration (C, K, ε, δ).
	Params core.Params
	// Scheme is the bias-setting scheme under test.
	Scheme core.Scheme
	// Seed drives data generation and perturbation.
	Seed uint64
	// RatioK is the (k,1/k) tightness of rrpp; 0 means the paper's 0.95.
	RatioK float64
	// WithAttack enables the inference analysis behind avg_prig. It is the
	// expensive part; utility-only experiments leave it off.
	WithAttack bool
	// PrivacySeeds is the number of independent perturbation runs the
	// privacy metric averages over (0 means 1); see EvalOptions.
	PrivacySeeds int
}

func (c Config) withDefaults() (Config, error) {
	if c.Dataset.Gen == nil {
		return c, fmt.Errorf("experiment: no dataset")
	}
	if c.WindowSize <= 0 {
		return c, fmt.Errorf("experiment: window size %d", c.WindowSize)
	}
	if c.Windows <= 0 {
		return c, fmt.Errorf("experiment: window count %d", c.Windows)
	}
	if c.Stride == 0 {
		c.Stride = 1
	}
	if c.Stride < 0 {
		return c, fmt.Errorf("experiment: stride %d", c.Stride)
	}
	if c.RatioK == 0 {
		c.RatioK = 0.95
	}
	if c.RatioK <= 0 || c.RatioK >= 1 {
		return c, fmt.Errorf("experiment: ratio k %v outside (0,1)", c.RatioK)
	}
	return c, nil
}

// Result aggregates one run.
type Result struct {
	// AvgPred / AvgROPP / AvgRRPP are means of the per-window utility
	// metrics over all measured windows.
	AvgPred, AvgROPP, AvgRRPP float64
	// AvgPrig is the privacy guarantee pooled over every (pattern, window,
	// perturbation-seed) estimate of the lattice-derivable vulnerable
	// patterns (only with WithAttack).
	AvgPrig float64
	// PhvTotal counts inferable vulnerable patterns across all windows.
	PhvTotal int
	// PhvWindows counts windows with at least one inferable pattern.
	PhvWindows int
	// Windows is the number of windows actually measured.
	Windows int
	// MiningTime, OptTime, PerturbTime are cumulative costs of the three
	// pipeline stages (Fig. 8's Mining alg / Opt / Basic).
	MiningTime, OptTime, PerturbTime time.Duration
	// FrequentAvg is the mean number of published itemsets per window.
	FrequentAvg float64
}

// WindowData is one mined window plus its clean-output inference analysis.
type WindowData struct {
	// Mined is the window's frequent itemsets with true supports.
	Mined *mining.Result
	// Breaches are the vulnerable patterns inferable from the clean output
	// (intra-window, plus inter-window against the previous window). Empty
	// when the precompute ran without attack.
	Breaches []attack.Inference
}

// Windows is the reusable, perturbation-independent part of a run.
type Windows struct {
	Dataset     Dataset
	WindowSize  int
	Stride      int
	MinSupport  int
	VulnSupport int
	Seed        uint64
	MiningTime  time.Duration
	Data        []WindowData
}

// Precompute mines `count` consecutive windows of the dataset's stream and,
// when withAttack is set, runs the clean-output inference analysis on each.
func Precompute(ds Dataset, windowSize, count, stride, minSupport, vulnSupport int, seed uint64, withAttack bool) (*Windows, error) {
	if windowSize <= 0 || count <= 0 || stride <= 0 {
		return nil, fmt.Errorf("experiment: bad precompute shape H=%d n=%d stride=%d",
			windowSize, count, stride)
	}
	if minSupport <= vulnSupport || vulnSupport < 1 {
		return nil, fmt.Errorf("experiment: bad thresholds C=%d K=%d", minSupport, vulnSupport)
	}
	gen := ds.Gen(seed)
	miner := moment.New(windowSize, minSupport)
	atkOpts := attack.Options{VulnSupport: vulnSupport}

	w := &Windows{
		Dataset:     ds,
		WindowSize:  windowSize,
		Stride:      stride,
		MinSupport:  minSupport,
		VulnSupport: vulnSupport,
		Seed:        seed,
		Data:        make([]WindowData, 0, count),
	}

	t0 := time.Now()
	for i := 0; i < windowSize; i++ {
		miner.Push(gen.Next())
	}
	w.MiningTime += time.Since(t0)

	var prevClean *attack.View
	for i := 0; i < count; i++ {
		if i > 0 {
			t0 = time.Now()
			for s := 0; s < stride; s++ {
				miner.Push(gen.Next())
			}
			w.MiningTime += time.Since(t0)
		}
		t0 = time.Now()
		mined := miner.Frequent()
		w.MiningTime += time.Since(t0)

		wd := WindowData{Mined: mined}
		if withAttack {
			clean := resultView(mined, windowSize)
			wd.Breaches = attack.IntraWindow(clean, atkOpts)
			if prevClean != nil {
				wd.Breaches = append(wd.Breaches,
					attack.InterWindow(prevClean, clean, stride, atkOpts)...)
			}
			prevClean = clean
		}
		w.Data = append(w.Data, wd)
	}
	return w, nil
}

// EvalOptions controls one RunPrecomputed evaluation.
type EvalOptions struct {
	// Seed drives the perturbation.
	Seed uint64
	// RatioK is the rrpp tightness (0 means 0.95).
	RatioK float64
	// WithAttack enables the avg_prig estimation (requires an
	// attack-enabled precompute to have produced breaches).
	WithAttack bool
	// PrivacySeeds is the number of independent perturbation runs the
	// privacy metric averages over (0 means 1). Consistent republication
	// freezes each itemset's noise for as long as its support is stable, so
	// a single run over consecutive windows observes only a handful of
	// independent draws; the δ floor is a statement about the expectation
	// and needs several independent runs to show through the noise.
	PrivacySeeds int
}

func (o EvalOptions) withDefaults() EvalOptions {
	if o.RatioK == 0 {
		o.RatioK = 0.95
	}
	if o.PrivacySeeds <= 0 {
		o.PrivacySeeds = 1
	}
	return o
}

// RunPrecomputed evaluates one perturbation setting over precomputed
// windows.
func RunPrecomputed(w *Windows, params core.Params, scheme core.Scheme, opts EvalOptions) (Result, error) {
	if err := params.Validate(); err != nil {
		return Result{}, err
	}
	if params.MinSupport != w.MinSupport || params.VulnSupport != w.VulnSupport {
		return Result{}, fmt.Errorf("experiment: params thresholds (C=%d,K=%d) differ from precomputed (C=%d,K=%d)",
			params.MinSupport, params.VulnSupport, w.MinSupport, w.VulnSupport)
	}
	opts = opts.withDefaults()

	runs := 1
	if opts.WithAttack {
		runs = opts.PrivacySeeds
	}
	var res Result
	var preds, ropps, rrpps []float64
	// avg_prig pools every (pattern, window, seed) estimate, matching the
	// paper's "for each p in Phv over 100 continuous windows" protocol.
	var pooled []metrics.PatternEstimate

	for r := 0; r < runs; r++ {
		pub, err := core.NewPublisher(params, scheme, rng.New(opts.Seed^0x5bf0f5+uint64(r)))
		if err != nil {
			return Result{}, err
		}
		for _, wd := range w.Data {
			out, err := pub.Publish(wd.Mined, w.WindowSize)
			if err != nil {
				return Result{}, err
			}
			if r == 0 {
				res.FrequentAvg += float64(wd.Mined.Len())
				pairs := make([]metrics.Pair, 0, wd.Mined.Len())
				for _, fi := range wd.Mined.Itemsets {
					san, ok := out.Support(fi.Set)
					if !ok {
						return Result{}, fmt.Errorf("experiment: %v missing from output", fi.Set)
					}
					pairs = append(pairs, metrics.Pair{True: fi.Support, Sanitized: san})
				}
				preds = append(preds, metrics.AvgPred(pairs))
				ropps = append(ropps, metrics.ROPP(pairs))
				rrpps = append(rrpps, metrics.RRPP(pairs, opts.RatioK))
				res.Windows++
			}

			if opts.WithAttack && len(wd.Breaches) > 0 {
				n := 0
				for _, b := range wd.Breaches {
					e, ok := EstimateBreach(b, out, nil)
					if !ok {
						continue
					}
					pooled = append(pooled, metrics.PatternEstimate{True: b.Support, Estimate: e})
					n++
				}
				if r == 0 && n > 0 {
					res.PhvTotal += n
					res.PhvWindows++
				}
			}
		}
		if r == 0 {
			res.OptTime, res.PerturbTime = pub.Timing()
		}
	}

	res.AvgPred = metrics.Mean(preds)
	res.AvgROPP = metrics.Mean(ropps)
	res.AvgRRPP = metrics.Mean(rrpps)
	res.AvgPrig = metrics.AvgPrig(pooled)
	if res.Windows > 0 {
		res.FrequentAvg /= float64(res.Windows)
	}
	res.MiningTime = w.MiningTime
	return res, nil
}

// EstimateBreach computes the §V-C adversary's estimate of one inferred
// pattern from sanitized output: the inclusion–exclusion sum over the
// sanitized lattice X_I^J, exactly as the paper's privacy analysis assumes
// ("the adversary has full access to T̃(X) for all X ∈ X_I^J"). It reports
// ok=false when some lattice member is unpublished — such patterns fall
// outside the analyzed adversary (completing them from bounds produces
// estimates whose error is unbounded and says nothing about the
// perturbation). know optionally overrides published values with exact side
// information (knowledge points), keyed by itemset.Key().
func EstimateBreach(b attack.Inference, out *core.Output, know map[string]int) (float64, bool) {
	lookup := func(x itemset.Itemset) (int, bool) {
		if x.Empty() {
			return out.WindowSize, true
		}
		if v, ok := know[x.Key()]; ok {
			return v, true
		}
		return out.Support(x)
	}
	v, ok, err := lattice.DerivePattern(b.I, b.J, lookup)
	if err != nil || !ok {
		return 0, false
	}
	return float64(v), true
}

// Run executes one self-contained measurement run (Precompute followed by
// RunPrecomputed). Figure sweeps that share thresholds across settings
// should call the two halves directly to avoid re-mining per setting.
func Run(cfg Config) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	if err := cfg.Params.Validate(); err != nil {
		return Result{}, err
	}
	w, err := Precompute(cfg.Dataset, cfg.WindowSize, cfg.Windows, cfg.Stride,
		cfg.Params.MinSupport, cfg.Params.VulnSupport, cfg.Seed, cfg.WithAttack)
	if err != nil {
		return Result{}, err
	}
	return RunPrecomputed(w, cfg.Params, cfg.Scheme, EvalOptions{
		Seed:         cfg.Seed,
		RatioK:       cfg.RatioK,
		WithAttack:   cfg.WithAttack,
		PrivacySeeds: cfg.PrivacySeeds,
	})
}

// resultView exposes a clean mining result as the adversary's view (true
// supports — the configuration used to FIND inferable patterns).
func resultView(res *mining.Result, windowSize int) *attack.View {
	sets := make([]itemset.Itemset, res.Len())
	sups := make([]int, res.Len())
	for i, fi := range res.Itemsets {
		sets[i] = fi.Set
		sups[i] = fi.Support
	}
	return attack.NewView(windowSize, sets, sups)
}

// outputView exposes sanitized output as the adversary's view.
func outputView(out *core.Output) *attack.View {
	sets := make([]itemset.Itemset, out.Len())
	sups := make([]int, out.Len())
	for i, it := range out.Items {
		sets[i] = it.Set
		sups[i] = it.Support
	}
	return attack.NewView(out.WindowSize, sets, sups)
}
