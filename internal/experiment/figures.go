package experiment

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// Point is one (x, y) measurement of a series.
type Point struct {
	X, Y float64
}

// Series is one labeled curve of a figure panel.
type Series struct {
	Name   string
	Points []Point
}

// Panel is one plot of a paper figure: a titled set of series.
type Panel struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// FigureOptions scales the experiment harness. Zero values select the
// paper's settings; tests and benchmarks shrink them.
type FigureOptions struct {
	// WindowSize is H (default 2000; Fig. 8 uses 5000 unless overridden).
	WindowSize int
	// Windows is the measured window count per configuration (default 100).
	Windows int
	// Stride is the slides between publications (default 1).
	Stride int
	// Seed drives everything (default 1).
	Seed uint64
	// Gamma is the order-preserving lookback except in the Fig. 6 sweep
	// (default 2, the paper's setting).
	Gamma int
	// DatasetFilter restricts to one dataset by name ("" = both).
	DatasetFilter string
	// PrivacySeeds is the number of independent perturbation runs the
	// Fig. 4 privacy metric averages over (default 5).
	PrivacySeeds int
}

func (o FigureOptions) withDefaults() FigureOptions {
	if o.WindowSize == 0 {
		o.WindowSize = 2000
	}
	if o.Windows == 0 {
		o.Windows = 100
	}
	if o.Stride == 0 {
		o.Stride = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Gamma == 0 {
		o.Gamma = 2
	}
	if o.PrivacySeeds == 0 {
		o.PrivacySeeds = 5
	}
	return o
}

func (o FigureOptions) datasets() []Dataset {
	all := Datasets()
	if o.DatasetFilter == "" {
		return all
	}
	for _, d := range all {
		if d.Name == o.DatasetFilter {
			return []Dataset{d}
		}
	}
	return nil
}

// paperParams builds the default C=25, K=5 calibration at the given (ε, δ).
func paperParams(eps, delta float64) core.Params {
	return core.Params{Epsilon: eps, Delta: delta, MinSupport: 25, VulnSupport: 5}
}

// Fig4 reproduces the privacy/precision experiment: ε/δ fixed at 0.04, δ
// swept over {0.2..1.0}; the top panels plot avg_prig against δ and the
// bottom panels avg_pred against ε = 0.04·δ, for the four variants on each
// dataset. Expected shape: every variant's avg_prig sits above the δ floor,
// every avg_pred below the ε ceiling, with Basic lowest on precision loss.
func Fig4(opts FigureOptions) ([]Panel, error) {
	opts = opts.withDefaults()
	deltas := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	const ppr = 0.04

	var panels []Panel
	for _, ds := range opts.datasets() {
		w, err := Precompute(ds, opts.WindowSize, opts.Windows, opts.Stride, 25, 5, opts.Seed, true)
		if err != nil {
			return nil, err
		}
		prig := Panel{
			Title:  fmt.Sprintf("Fig4 %s: avg_prig vs δ (ε/δ=%.2g)", ds.Name, ppr),
			XLabel: "δ", YLabel: "avg_prig",
		}
		pred := Panel{
			Title:  fmt.Sprintf("Fig4 %s: avg_pred vs ε (ε/δ=%.2g)", ds.Name, ppr),
			XLabel: "ε", YLabel: "avg_pred",
		}
		for _, v := range Variants(opts.Gamma) {
			sPrig := Series{Name: v.Name}
			sPred := Series{Name: v.Name}
			for _, delta := range deltas {
				res, err := RunPrecomputed(w, paperParams(ppr*delta, delta), v.Scheme,
					EvalOptions{Seed: opts.Seed, WithAttack: true, PrivacySeeds: opts.PrivacySeeds})
				if err != nil {
					return nil, err
				}
				sPrig.Points = append(sPrig.Points, Point{X: delta, Y: res.AvgPrig})
				sPred.Points = append(sPred.Points, Point{X: ppr * delta, Y: res.AvgPred})
			}
			prig.Series = append(prig.Series, sPrig)
			pred.Series = append(pred.Series, sPred)
		}
		panels = append(panels, prig, pred)
	}
	return panels, nil
}

// Fig5 reproduces the order/ratio experiment: δ fixed at 0.4, the
// precision-privacy ratio ε/δ swept over {0.2..1.0}; panels plot avg_ropp
// and avg_rrpp for the four variants. Expected shape: OP (λ=1) wins ropp,
// RP (λ=0) wins rrpp, OP is worst on rrpp, the hybrid is second-best on
// both, and both rates rise with ε/δ.
func Fig5(opts FigureOptions) ([]Panel, error) {
	opts = opts.withDefaults()
	pprs := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	const delta = 0.4

	var panels []Panel
	for _, ds := range opts.datasets() {
		w, err := Precompute(ds, opts.WindowSize, opts.Windows, opts.Stride, 25, 5, opts.Seed, false)
		if err != nil {
			return nil, err
		}
		ropp := Panel{
			Title:  fmt.Sprintf("Fig5 %s: avg_ropp vs ε/δ (δ=%.2g)", ds.Name, delta),
			XLabel: "ε/δ (ppr)", YLabel: "avg_ropp",
		}
		rrpp := Panel{
			Title:  fmt.Sprintf("Fig5 %s: avg_rrpp vs ε/δ (δ=%.2g)", ds.Name, delta),
			XLabel: "ε/δ (ppr)", YLabel: "avg_rrpp",
		}
		for _, v := range Variants(opts.Gamma) {
			sR := Series{Name: v.Name}
			sQ := Series{Name: v.Name}
			for _, ppr := range pprs {
				res, err := RunPrecomputed(w, paperParams(ppr*delta, delta), v.Scheme, EvalOptions{Seed: opts.Seed})
				if err != nil {
					return nil, err
				}
				sR.Points = append(sR.Points, Point{X: ppr, Y: res.AvgROPP})
				sQ.Points = append(sQ.Points, Point{X: ppr, Y: res.AvgRRPP})
			}
			ropp.Series = append(ropp.Series, sR)
			rrpp.Series = append(rrpp.Series, sQ)
		}
		panels = append(panels, ropp, rrpp)
	}
	return panels, nil
}

// Fig6 reproduces the γ-tuning experiment: avg_ropp of the order-preserving
// scheme as γ grows from 0 to 6 (δ=0.4, ε/δ=0.6). Expected shape: a sharp
// rise up to γ ≈ 2–3, then a plateau, because FECs rarely overlap more than
// 2–3 neighbours.
func Fig6(opts FigureOptions) ([]Panel, error) {
	opts = opts.withDefaults()
	gammas := []int{0, 1, 2, 3, 4, 5, 6}
	const delta, ppr = 0.4, 0.6

	var panels []Panel
	for _, ds := range opts.datasets() {
		w, err := Precompute(ds, opts.WindowSize, opts.Windows, opts.Stride, 25, 5, opts.Seed, false)
		if err != nil {
			return nil, err
		}
		panel := Panel{
			Title:  fmt.Sprintf("Fig6 %s: avg_ropp vs γ (δ=%.2g, ε/δ=%.2g)", ds.Name, delta, ppr),
			XLabel: "γ", YLabel: "avg_ropp",
		}
		s := Series{Name: "Opt λ=1"}
		for _, g := range gammas {
			gammaArg := g
			if g == 0 {
				gammaArg = -1 // OrderPreserving encodes a true γ=0 as negative
			}
			res, err := RunPrecomputed(w, paperParams(ppr*delta, delta),
				core.OrderPreserving{Gamma: gammaArg}, EvalOptions{Seed: opts.Seed})
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: float64(g), Y: res.AvgROPP})
		}
		panel.Series = append(panel.Series, s)
		panels = append(panels, panel)
	}
	return panels, nil
}

// Fig7 reproduces the λ-tradeoff experiment: for ε/δ ∈ {0.3, 0.6, 0.9} and
// λ ∈ {0.2..1.0} (δ=0.4), plot the (avg_ropp, avg_rrpp) frontier. Expected
// shape: monotone tradeoff curves, with larger ε/δ dominating smaller.
func Fig7(opts FigureOptions) ([]Panel, error) {
	opts = opts.withDefaults()
	lambdas := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	pprs := []float64{0.3, 0.6, 0.9}
	const delta = 0.4

	var panels []Panel
	for _, ds := range opts.datasets() {
		w, err := Precompute(ds, opts.WindowSize, opts.Windows, opts.Stride, 25, 5, opts.Seed, false)
		if err != nil {
			return nil, err
		}
		panel := Panel{
			Title:  fmt.Sprintf("Fig7 %s: avg_rrpp vs avg_ropp across λ (δ=%.2g)", ds.Name, delta),
			XLabel: "avg_ropp", YLabel: "avg_rrpp",
		}
		for _, ppr := range pprs {
			s := Series{Name: fmt.Sprintf("ε/δ = %.2g", ppr)}
			for _, lambda := range lambdas {
				res, err := RunPrecomputed(w, paperParams(ppr*delta, delta),
					core.Hybrid{Lambda: lambda, Order: core.OrderPreserving{Gamma: opts.Gamma}},
					EvalOptions{Seed: opts.Seed})
				if err != nil {
					return nil, err
				}
				s.Points = append(s.Points, Point{X: res.AvgROPP, Y: res.AvgRRPP})
			}
			panel.Series = append(panel.Series, s)
		}
		panels = append(panels, panel)
	}
	return panels, nil
}

// Fig8 reproduces the efficiency experiment: per-window time of the mining
// algorithm, the basic perturbation and the optimization, as the minimum
// support C drops over {30, 25, 20, 15, 10} with H = 5000 (δ=0.4). Expected
// shape: the Butterfly overheads sit far below the mining cost and grow far
// slower as C decreases, because they scale with the number of FECs, not
// the number of frequent itemsets.
func Fig8(opts FigureOptions) ([]Panel, error) {
	opts = opts.withDefaults()
	if opts.WindowSize == 2000 {
		opts.WindowSize = 5000 // the paper's Fig. 8 setting
	}
	supports := []int{30, 25, 20, 15, 10}
	const delta = 0.4

	var panels []Panel
	for _, ds := range opts.datasets() {
		panel := Panel{
			Title:  fmt.Sprintf("Fig8 %s: per-window time vs C (H=%d)", ds.Name, opts.WindowSize),
			XLabel: "minimum support (C)", YLabel: "seconds/window",
		}
		mine := Series{Name: "Mining alg"}
		basic := Series{Name: "Basic"}
		opt := Series{Name: "Opt"}
		for _, c := range supports {
			// ε chosen to keep every C in the sweep feasible at δ=0.4.
			params := core.Params{Epsilon: 0.08, Delta: delta, MinSupport: c, VulnSupport: 5}
			res, err := Run(Config{
				Dataset:    ds,
				WindowSize: opts.WindowSize,
				Windows:    opts.Windows,
				Stride:     opts.Stride,
				Params:     params,
				Scheme:     core.Hybrid{Lambda: 0.4, Order: core.OrderPreserving{Gamma: opts.Gamma}},
				Seed:       opts.Seed,
			})
			if err != nil {
				return nil, err
			}
			perWindow := func(d time.Duration) float64 {
				return d.Seconds() / float64(res.Windows)
			}
			mine.Points = append(mine.Points, Point{X: float64(c), Y: perWindow(res.MiningTime)})
			basic.Points = append(basic.Points, Point{X: float64(c), Y: perWindow(res.PerturbTime)})
			opt.Points = append(opt.Points, Point{X: float64(c), Y: perWindow(res.OptTime)})
		}
		panel.Series = append(panel.Series, mine, basic, opt)
		panels = append(panels, panel)
	}
	return panels, nil
}

// Figure dispatches a figure number to its runner.
func Figure(n int, opts FigureOptions) ([]Panel, error) {
	switch n {
	case 4:
		return Fig4(opts)
	case 5:
		return Fig5(opts)
	case 6:
		return Fig6(opts)
	case 7:
		return Fig7(opts)
	case 8:
		return Fig8(opts)
	default:
		return nil, fmt.Errorf("experiment: paper has no reproducible figure %d (figures 4-8)", n)
	}
}
