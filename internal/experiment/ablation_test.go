package experiment

import (
	"testing"

	"repro/internal/core"
)

func smallWindows(t *testing.T, withAttack bool) *Windows {
	t.Helper()
	w, err := Precompute(Datasets()[0], 300, 8, 5, 12, 3, 7, withAttack)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func smallParams() core.Params {
	return core.Params{Epsilon: 0.04, Delta: 0.5, MinSupport: 12, VulnSupport: 3}
}

func TestAblationKnowledgeMonotone(t *testing.T) {
	w := smallWindows(t, true)
	s, err := AblationKnowledge(w, smallParams(), core.Basic{}, 7, []int{0, 4, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 4 {
		t.Fatalf("got %d points", len(s.Points))
	}
	// With no knowledge, the guarantee holds; with many knowledge points it
	// must degrade (strictly, unless no breach touched a known itemset —
	// essentially impossible since breaches derive FROM frequent itemsets).
	if s.Points[0].Y <= s.Points[len(s.Points)-1].Y {
		t.Errorf("knowledge points did not degrade privacy: prig %v -> %v",
			s.Points[0].Y, s.Points[len(s.Points)-1].Y)
	}
	if s.Points[0].Y < smallParams().Delta {
		t.Errorf("prig without knowledge %v below δ %v", s.Points[0].Y, smallParams().Delta)
	}
}

func TestAblationKnowledgeRejectsNegative(t *testing.T) {
	w := smallWindows(t, true)
	if _, err := AblationKnowledge(w, smallParams(), core.Basic{}, 7, []int{-1}); err == nil {
		t.Error("negative k accepted")
	}
}

func TestAblationRepublicationGap(t *testing.T) {
	w := smallWindows(t, false)
	series, err := AblationRepublication(w, smallParams(), core.Basic{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("got %d series", len(series))
	}
	cached, fresh := series[0], series[1]
	if len(cached.Points) == 0 || len(fresh.Points) == 0 {
		t.Fatal("empty series — no stable itemsets survived the run")
	}
	// At the last measured window the averaging adversary must be doing
	// better against the uncached publisher than the cached one.
	lastCached := cached.Points[len(cached.Points)-1].Y
	lastFresh := fresh.Points[len(fresh.Points)-1].Y
	if lastFresh >= lastCached {
		t.Errorf("averaging attack not demonstrated: cached MSE %v vs fresh MSE %v",
			lastCached, lastFresh)
	}
}

func TestAblationValidatesParams(t *testing.T) {
	w := smallWindows(t, false)
	if _, err := AblationKnowledge(w, core.Params{}, core.Basic{}, 7, []int{0}); err == nil {
		t.Error("invalid params accepted by AblationKnowledge")
	}
	if _, err := AblationRepublication(w, core.Params{}, core.Basic{}, 7); err == nil {
		t.Error("invalid params accepted by AblationRepublication")
	}
}

func TestAblationSuppressionComparison(t *testing.T) {
	w := smallWindows(t, false)
	cmp, err := AblationSuppression(w, smallParams(), core.Basic{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Windows == 0 {
		t.Fatal("no windows measured")
	}
	if cmp.SuppressedFrac < 0 || cmp.SuppressedFrac > 1 {
		t.Errorf("suppressed fraction %v out of range", cmp.SuppressedFrac)
	}
	if cmp.ButterflyPred > smallParams().Epsilon {
		t.Errorf("butterfly pred %v exceeds ε", cmp.ButterflyPred)
	}
	if cmp.SuppressRounds < 1 {
		t.Errorf("rounds %v below 1", cmp.SuppressRounds)
	}
	// The paper's efficiency argument: detection costs more than
	// perturbation. (Both tiny here; the ratio is what matters.)
	if cmp.SuppressTime < cmp.ButterflyTime {
		t.Logf("note: suppression %v cheaper than butterfly %v at this tiny scale",
			cmp.SuppressTime, cmp.ButterflyTime)
	}
}

func TestAblationSuppressionValidates(t *testing.T) {
	w := smallWindows(t, false)
	if _, err := AblationSuppression(w, core.Params{}, core.Basic{}, 7); err == nil {
		t.Error("invalid params accepted")
	}
}
