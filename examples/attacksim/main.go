// Attack simulation: the adversary of §IV against a live stream, with and
// without Butterfly.
//
// The demo replays the paper's running example first — the inter-window
// breach of Example 5, reproduced exactly — then turns the same adversary
// loose on a clickstream: for a run of consecutive windows it counts how
// many hard-vulnerable patterns (support <= K) the intra- and inter-window
// attacks extract from the raw output, and how far off the same adversary's
// estimates are once Butterfly sanitizes the releases.
//
// Run with: go run ./examples/attacksim
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/mining/moment"
	"repro/internal/paperex"
	"repro/internal/rng"
)

func main() {
	replayExample5()
	huntStream()
}

// replayExample5 walks the paper's Fig. 3 scenario: windows Ds(11,8) and
// Ds(12,8) with C=4, K=1.
func replayExample5() {
	fmt.Println("== The paper's Example 5 ==")
	prev := viewOf(paperex.Window11(), 4)
	cur := viewOf(paperex.Window12(), 4)
	opts := attack.Options{VulnSupport: 1}

	fmt.Printf("intra-window breaches: Ds(11,8): %d, Ds(12,8): %d (both immune)\n",
		len(attack.IntraWindow(prev, opts)), len(attack.IntraWindow(cur, opts)))

	infs := attack.InterWindow(prev, cur, 1, opts)
	fmt.Printf("inter-window attack on the pair: %d breach(es)\n", len(infs))
	for _, inf := range infs {
		fmt.Printf("  %-10s support %d (%s)\n", inf.Pattern, inf.Support, inf.Source)
	}
	fmt.Println()
}

// huntStream runs the adversary over consecutive windows of a clickstream.
func huntStream() {
	const (
		windowSize  = 800
		minSupport  = 16
		vulnSupport = 4
		windows     = 30
		stride      = 1
	)
	fmt.Printf("== Clickstream hunt: %d windows, H=%d, C=%d, K=%d ==\n",
		windows, windowSize, minSupport, vulnSupport)

	gen := data.WebViewLike(5)
	miner := moment.New(windowSize, minSupport)
	for i := 0; i < windowSize; i++ {
		miner.Push(gen.Next())
	}

	params := core.Params{Epsilon: 0.06, Delta: 0.6, MinSupport: minSupport, VulnSupport: vulnSupport}
	pub, err := core.NewPublisher(params, core.Hybrid{Lambda: 0.4}, rng.New(11))
	if err != nil {
		log.Fatal(err)
	}

	opts := attack.Options{VulnSupport: vulnSupport}
	estOpts := attack.Options{VulnSupport: vulnSupport, SkipCompletion: true}
	var prevClean *attack.View
	totalBreaches, exactHits := 0, 0
	var relErrs []float64

	for w := 0; w < windows; w++ {
		if w > 0 {
			for s := 0; s < stride; s++ {
				miner.Push(gen.Next())
			}
		}
		res := miner.Frequent()
		clean := resultView(res, windowSize)
		breaches := attack.IntraWindow(clean, opts)
		if prevClean != nil {
			breaches = append(breaches, attack.InterWindow(prevClean, clean, stride, opts)...)
		}
		prevClean = clean
		if len(breaches) == 0 {
			continue
		}
		totalBreaches += len(breaches)

		// The same adversary, now against the sanitized release.
		out, err := pub.Publish(res, windowSize)
		if err != nil {
			log.Fatal(err)
		}
		est := attack.NewEstimator(viewOfOutput(out), estOpts)
		for _, b := range breaches {
			guess, ok := est.EstimatePattern(b.I, b.J)
			if !ok {
				continue
			}
			if int(math.Round(guess)) == b.Support {
				exactHits++
			}
			rel := (guess - float64(b.Support)) / float64(b.Support)
			relErrs = append(relErrs, rel*rel)
		}
	}

	fmt.Printf("raw output:       %d vulnerable patterns inferred EXACTLY (every one a breach)\n",
		totalBreaches)
	fmt.Printf("butterfly output: %d/%d adversary guesses still exact\n", exactHits, totalBreaches)
	var mean float64
	for _, e := range relErrs {
		mean += e
	}
	if len(relErrs) > 0 {
		mean /= float64(len(relErrs))
	}
	fmt.Printf("adversary's mean squared relative error: %.3f (guaranteed floor δ = %.2g)\n",
		mean, params.Delta)
	fmt.Println("\nEvery raw-output inference is exact because inclusion-exclusion over")
	fmt.Println("true supports is arithmetic, not statistics. Butterfly's calibrated")
	fmt.Println("noise accumulates across the lattice and drowns the derivation.")
}

func viewOf(db *itemset.Database, c int) *attack.View {
	res, err := mining.Eclat(db, c)
	if err != nil {
		log.Fatal(err)
	}
	return resultView(res, db.Len())
}

func resultView(res *mining.Result, windowSize int) *attack.View {
	sets := make([]itemset.Itemset, res.Len())
	sups := make([]int, res.Len())
	for i, fi := range res.Itemsets {
		sets[i] = fi.Set
		sups[i] = fi.Support
	}
	return attack.NewView(windowSize, sets, sups)
}

func viewOfOutput(out *core.Output) *attack.View {
	sets := make([]itemset.Itemset, out.Len())
	sups := make([]int, out.Len())
	for i, it := range out.Items {
		sets[i] = it.Set
		sups[i] = it.Support
	}
	return attack.NewView(out.WindowSize, sets, sups)
}
