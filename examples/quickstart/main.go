// Quickstart: the smallest end-to-end Butterfly pipeline.
//
// A synthetic clickstream is pushed through a sliding window; the window is
// mined for frequent itemsets and the output is published twice — once raw
// (what an unprotected mining system would release) and once sanitized by
// Butterfly — so the two can be compared side by side.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/data"
)

func main() {
	// A Butterfly stream: window of 1000 records, mining threshold C=20,
	// vulnerable threshold K=5, precision budget ε=0.04 (published supports
	// stay within ~20% of truth), privacy floor δ=0.4 (any inferred
	// vulnerable pattern carries at least 40% relative estimation error).
	stream, err := core.NewStream(core.StreamConfig{
		WindowSize: 1000,
		Params: core.Params{
			Epsilon:     0.04,
			Delta:       0.4,
			MinSupport:  20,
			VulnSupport: 5,
		},
		Scheme: core.Hybrid{Lambda: 0.4}, // balance order and ratio utility
		Seed:   42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Feed a synthetic e-commerce clickstream (BMS-WebView-1 surrogate).
	gen := data.WebViewLike(42)
	for i := 0; i < 1500; i++ {
		stream.Push(gen.Next())
	}

	raw := stream.Mine() // never leaves an actual deployment
	sanitized, err := stream.Publish()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("window mined: %d frequent itemsets at C=20\n\n", raw.Len())
	fmt.Printf("%-24s %8s %11s %8s\n", "itemset", "true", "published", "error")
	shown := 0
	for _, fi := range raw.Itemsets {
		san, _ := sanitized.Support(fi.Set)
		fmt.Printf("%-24s %8d %11d %+7d\n", fi.Set.String(), fi.Support, san, san-fi.Support)
		shown++
		if shown == 12 {
			break
		}
	}
	fmt.Printf("... and %d more\n\n", raw.Len()-shown)
	fmt.Println("The published column is all a consumer ever sees: close enough to")
	fmt.Println("rank and compare itemsets, but noisy enough that inclusion-exclusion")
	fmt.Println("over many itemsets cannot pin down any individual's record.")
}
