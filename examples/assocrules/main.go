// Association rules from sanitized output: the §VI-B use case.
//
// Rule confidence is a RATIO of two published supports, conf(A⇒B) =
// T(A∪B)/T(A). This demo mines a retail basket window, derives the top
// association rules three times — from the raw supports, from
// ratio-preserving Butterfly output, and from order-preserving output — and
// reports how far each sanitized rule set drifts from the truth. The
// ratio-preserving scheme exists precisely to keep this consumer accurate.
//
// Run with: go run ./examples/assocrules
package main

import (
	"fmt"
	"log"

	"repro/internal/assoc"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/rng"
)

func main() {
	gen := data.POSLike(29)
	db := itemset.NewDatabase(gen.Generate(2000))
	const minSupport = 25
	res, err := mining.Eclat(db, minSupport)
	if err != nil {
		log.Fatal(err)
	}
	sets := make([]itemset.Itemset, res.Len())
	for i, fi := range res.Itemsets {
		sets[i] = fi.Set
	}
	cfg := assoc.Config{MinConfidence: 0.3, Transactions: db.Len()}

	trueRules := assoc.Rules(sets, res, cfg)
	fmt.Printf("mined %d frequent itemsets; %d rules at confidence >= %.2f\n\n",
		res.Len(), len(trueRules), cfg.MinConfidence)
	fmt.Println("top rules from RAW supports (what leaks without protection):")
	for i, r := range trueRules {
		if i == 5 {
			break
		}
		fmt.Printf("  %s\n", r)
	}

	params := core.Params{Epsilon: 0.1, Delta: 0.4, MinSupport: minSupport, VulnSupport: 5}
	fmt.Printf("\nrule-confidence drift after Butterfly (ε=%.2g, δ=%.2g), averaged over 10 runs:\n",
		params.Epsilon, params.Delta)
	fmt.Printf("%-24s %22s\n", "scheme", "mean |Δconfidence|")
	for _, scheme := range []core.Scheme{
		core.Basic{},
		core.OrderPreserving{Gamma: 2},
		core.RatioPreserving{},
		core.Hybrid{Lambda: 0.4},
	} {
		var total float64
		const runs = 10
		for r := 0; r < runs; r++ {
			pub, err := core.NewPublisher(params, scheme, rng.New(uint64(40+r)))
			if err != nil {
				log.Fatal(err)
			}
			out, err := pub.Publish(res, db.Len())
			if err != nil {
				log.Fatal(err)
			}
			mae, n := assoc.ConfidenceError(sets, res, out, cfg)
			if n == 0 {
				log.Fatal("no rules to compare")
			}
			total += mae
		}
		fmt.Printf("%-24s %22.4f\n", scheme.Name(), total/runs)
	}
	fmt.Println("\nRatio preservation keeps confidences closest to the truth; order")
	fmt.Println("preservation trades that away for stable rankings (see retailstream).")
}
