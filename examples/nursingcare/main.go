// Nursing-care records: the paper's Example 1, end to end.
//
// A hospital publishes frequent symptom combinations mined from its
// nursing-care records. Alice knows Bob has symptoms fever and cough but no
// rash. From the published supports alone she derives — by
// inclusion-exclusion over the lattice of {fever, cough, rash} — that
// exactly ONE patient matches {fever, cough, ¬rash}: that patient must be
// Bob, and every other property of that record is now Bob's.
//
// The demo runs the inference twice: against the raw mining output (the
// breach succeeds, support pinned exactly) and against Butterfly-sanitized
// output (the estimate is off by design, with guaranteed relative error).
//
// Run with: go run ./examples/nursingcare
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/rng"
)

const (
	fever itemset.Item = iota
	cough
	rash
	dizziness
)

var symptomNames = map[itemset.Item]string{
	fever: "fever", cough: "cough", rash: "rash", dizziness: "dizziness",
}

func render(s itemset.Itemset) string {
	out := ""
	for i, it := range s.Items() {
		if i > 0 {
			out += "+"
		}
		out += symptomNames[it]
	}
	if out == "" {
		return "none"
	}
	return out
}

// ward builds the nursing records: common syndromes plus Bob, the only
// patient with fever and cough but no rash.
func ward() *itemset.Database {
	var records []itemset.Itemset
	for i := 0; i < 14; i++ {
		records = append(records, itemset.New(fever, cough, rash)) // classic syndrome
	}
	for i := 0; i < 9; i++ {
		records = append(records, itemset.New(cough, rash))
	}
	for i := 0; i < 8; i++ {
		records = append(records, itemset.New(fever, rash))
	}
	for i := 0; i < 6; i++ {
		records = append(records, itemset.New(rash, dizziness))
	}
	records = append(records, itemset.New(fever, cough, dizziness)) // Bob
	return itemset.NewDatabase(records)
}

func main() {
	db := ward()
	const minSupport, vulnSupport = 5, 2

	res, err := mining.Apriori(db, minSupport)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hospital publishes %d frequent symptom sets (C=%d) over %d records\n\n",
		res.Len(), minSupport, db.Len())
	for _, fi := range res.Itemsets {
		fmt.Printf("  %-22s %d\n", render(fi.Set), fi.Support)
	}

	// --- Attack on the raw output -------------------------------------
	view := attack.NewView(db.Len(), sets(res), sups(res))
	breaches := attack.IntraWindow(view, attack.Options{VulnSupport: vulnSupport})

	target := itemset.NewPattern(itemset.New(fever, cough), itemset.New(rash))
	fmt.Printf("\nAlice's inference over the RAW output (she knows Bob has fever+cough, no rash):\n")
	found := false
	for _, b := range breaches {
		if b.Pattern.Equal(target) {
			found = true
			fmt.Printf("  derived support(fever+cough+NO rash) = %d\n", b.Support)
		}
	}
	if !found {
		log.Fatal("expected the fever+cough+¬rash breach; fixture broken")
	}
	fmt.Println("  => exactly one patient matches; that patient is Bob.")
	fmt.Printf("  => the record also shows %s: Alice learns Bob has %s.\n",
		symptomNames[dizziness], symptomNames[dizziness])
	fmt.Printf("  (%d vulnerable patterns were inferable in total)\n", len(breaches))

	// --- Same attack against Butterfly output -------------------------
	params := core.Params{Epsilon: 0.3, Delta: 0.8, MinSupport: minSupport, VulnSupport: vulnSupport}
	pub, err := core.NewPublisher(params, core.Basic{}, rng.New(7))
	if err != nil {
		log.Fatal(err)
	}
	out, err := pub.Publish(res, db.Len())
	if err != nil {
		log.Fatal(err)
	}
	sanView := attack.NewView(db.Len(), outSets(out), outSups(out))
	est := attack.NewEstimator(sanView, attack.Options{VulnSupport: vulnSupport})
	guess, _ := est.EstimatePattern(itemset.New(fever, cough), itemset.New(fever, cough, rash))

	truth := db.PatternSupport(target)
	fmt.Printf("\nAfter Butterfly (ε=%.2g, δ=%.2g):\n", params.Epsilon, params.Delta)
	fmt.Printf("  Alice's best estimate of the same pattern: %.1f (truth: %d)\n", guess, truth)
	fmt.Printf("  guaranteed relative estimation error: at least δ = %.2g\n", params.Delta)
	fmt.Println("  => she cannot tell one unique patient from zero or three;")
	fmt.Println("     Bob's dizziness stays private while the syndrome statistics survive.")
}

func sets(r *mining.Result) []itemset.Itemset {
	out := make([]itemset.Itemset, r.Len())
	for i, fi := range r.Itemsets {
		out[i] = fi.Set
	}
	return out
}

func sups(r *mining.Result) []int {
	out := make([]int, r.Len())
	for i, fi := range r.Itemsets {
		out[i] = fi.Support
	}
	return out
}

func outSets(o *core.Output) []itemset.Itemset {
	out := make([]itemset.Itemset, o.Len())
	for i, it := range o.Items {
		out[i] = it.Set
	}
	return out
}

func outSups(o *core.Output) []int {
	out := make([]int, o.Len())
	for i, it := range o.Items {
		out[i] = it.Support
	}
	return out
}
