// Retail stream: continuous publication with semantics-preserving schemes.
//
// A point-of-sale stream (BMS-POS surrogate) is mined over a sliding window
// and published every 200 transactions. A downstream dashboard asks two
// questions of every release: "what are the top-5 selling bundles?" (an
// ORDER query) and "how do bundle volumes compare?" (a RATIO query). The
// demo publishes the same windows under the basic, order-preserving,
// ratio-preserving and hybrid schemes and scores how well each release
// answers the dashboard's queries — the paper's §VI tradeoff, observable on
// one screen.
//
// Run with: go run ./examples/retailstream
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/mining"
	"repro/internal/mining/moment"
	"repro/internal/rng"
)

const (
	windowSize   = 1500
	minSupport   = 20
	vulnSupport  = 5
	publishEvery = 200
	publications = 10
)

func main() {
	params := core.Params{Epsilon: 0.12, Delta: 0.4, MinSupport: minSupport, VulnSupport: vulnSupport}
	schemes := []core.Scheme{
		core.Basic{},
		core.OrderPreserving{Gamma: 2},
		core.RatioPreserving{},
		core.Hybrid{Lambda: 0.4},
	}

	// Mine the windows once; evaluate every scheme on identical releases.
	gen := data.POSLike(7)
	miner := moment.New(windowSize, minSupport)
	for i := 0; i < windowSize; i++ {
		miner.Push(gen.Next())
	}
	var windows []*mining.Result
	for w := 0; w < publications; w++ {
		for i := 0; i < publishEvery; i++ {
			miner.Push(gen.Next())
		}
		windows = append(windows, miner.Frequent())
	}

	fmt.Printf("POS stream: %d publications, window %d, C=%d, ε=%.2g, δ=%.2g\n\n",
		publications, windowSize, minSupport, params.Epsilon, params.Delta)
	fmt.Printf("%-22s %10s %10s %12s\n", "scheme", "avg_ropp", "avg_rrpp", "top5 intact")

	for _, scheme := range schemes {
		pub, err := core.NewPublisher(params, scheme, rng.New(99))
		if err != nil {
			log.Fatal(err)
		}
		var ropps, rrpps []float64
		top5Hits := 0
		for _, res := range windows {
			out, err := pub.Publish(res, windowSize)
			if err != nil {
				log.Fatal(err)
			}
			pairs := make([]metrics.Pair, 0, res.Len())
			for _, fi := range res.Itemsets {
				san, _ := out.Support(fi.Set)
				pairs = append(pairs, metrics.Pair{True: fi.Support, Sanitized: san})
			}
			ropps = append(ropps, metrics.ROPP(pairs))
			rrpps = append(rrpps, metrics.RRPP(pairs, 0.95))
			if topKIntact(res, out, 5) {
				top5Hits++
			}
		}
		fmt.Printf("%-22s %10.4f %10.4f %9d/%d\n",
			scheme.Name(), metrics.Mean(ropps), metrics.Mean(rrpps), top5Hits, len(windows))
	}

	fmt.Println("\nOrder preservation keeps the top-5 dashboard stable; ratio preservation")
	fmt.Println("keeps relative volumes (rrpp) honest; the hybrid buys most of both.")
}

// topKIntact reports whether the k itemsets with the highest true support
// are exactly the k itemsets with the highest sanitized support, ignoring
// order within the set. True-support ties at the k-th place are tolerated:
// any itemset tied with the k-th true support may stand in.
func topKIntact(res *mining.Result, out *core.Output, k int) bool {
	if res.Len() < k || len(out.Items) < k {
		return true
	}
	// res.Itemsets is sorted by descending true support.
	kth := res.Itemsets[k-1].Support
	allowed := map[string]bool{}
	for _, fi := range res.Itemsets {
		if fi.Support < kth {
			break
		}
		allowed[fi.Set.Key()] = true
	}
	// out.Items is sorted by descending sanitized support; take its top k
	// (extending through sanitized ties at the boundary).
	items := out.Items
	sort.SliceStable(items, func(i, j int) bool { return items[i].Support > items[j].Support })
	for i := 0; i < k; i++ {
		if !allowed[items[i].Set.Key()] {
			return false
		}
	}
	return true
}
