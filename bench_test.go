// Package repro's top-level benchmarks regenerate each evaluation figure of
// the Butterfly paper at reduced scale — one benchmark per figure — plus an
// end-to-end pipeline benchmark. Full-scale regeneration (100 windows,
// H=2000/5000, both datasets) is the job of cmd/experiments; these
// benchmarks exist so `go test -bench` exercises every experiment path and
// reports its cost.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/experiment"
)

// benchOpts shrinks a figure run to benchmark scale: one dataset, few
// windows, wide stride. The sweep structure (all settings, all variants) is
// preserved — only the per-setting window count shrinks.
func benchOpts() experiment.FigureOptions {
	return experiment.FigureOptions{
		WindowSize:    500,
		Windows:       4,
		Stride:        25,
		Seed:          1,
		Gamma:         2,
		DatasetFilter: "WebView1",
	}
}

func runFigure(b *testing.B, n int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		panels, err := experiment.Figure(n, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(panels) == 0 {
			b.Fatal("no panels")
		}
	}
}

// BenchmarkFig4Privacy regenerates the privacy/precision experiment
// (avg_prig vs δ, avg_pred vs ε; Fig. 4).
func BenchmarkFig4Privacy(b *testing.B) { runFigure(b, 4) }

// BenchmarkFig5OrderRatio regenerates the order/ratio preservation
// experiment (avg_ropp and avg_rrpp vs ε/δ; Fig. 5).
func BenchmarkFig5OrderRatio(b *testing.B) { runFigure(b, 5) }

// BenchmarkFig6Gamma regenerates the γ-tuning experiment (avg_ropp vs γ;
// Fig. 6).
func BenchmarkFig6Gamma(b *testing.B) { runFigure(b, 6) }

// BenchmarkFig7Hybrid regenerates the λ-tradeoff experiment (ropp/rrpp
// frontier; Fig. 7).
func BenchmarkFig7Hybrid(b *testing.B) { runFigure(b, 7) }

// BenchmarkFig8Overhead regenerates the efficiency experiment (per-window
// mining/Basic/Opt time vs C; Fig. 8).
func BenchmarkFig8Overhead(b *testing.B) {
	opts := benchOpts()
	opts.WindowSize = 1000 // Fig8 would otherwise bump the default to 5000
	for i := 0; i < b.N; i++ {
		panels, err := experiment.Fig8(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(panels) == 0 {
			b.Fatal("no panels")
		}
	}
}

// BenchmarkPipelinePush measures the steady-state per-record cost of the
// full stream pipeline (incremental mining + window bookkeeping).
func BenchmarkPipelinePush(b *testing.B) {
	stream, err := core.NewStream(core.StreamConfig{
		WindowSize: 2000,
		Params:     core.Params{Epsilon: 0.016, Delta: 0.4, MinSupport: 25, VulnSupport: 5},
		Scheme:     core.Hybrid{Lambda: 0.4},
		Seed:       1,
	})
	if err != nil {
		b.Fatal(err)
	}
	gen := data.WebViewLike(1)
	for i := 0; i < 2000; i++ {
		stream.Push(gen.Next())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream.Push(gen.Next())
	}
}

// BenchmarkPipelinePublish measures one sanitized release of a full window
// (FEC partitioning, bias optimization, perturbation).
func BenchmarkPipelinePublish(b *testing.B) {
	stream, err := core.NewStream(core.StreamConfig{
		WindowSize: 2000,
		Params:     core.Params{Epsilon: 0.016, Delta: 0.4, MinSupport: 25, VulnSupport: 5},
		Scheme:     core.Hybrid{Lambda: 0.4},
		Seed:       1,
	})
	if err != nil {
		b.Fatal(err)
	}
	gen := data.WebViewLike(1)
	for i := 0; i < 2200; i++ {
		stream.Push(gen.Next())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stream.Publish(); err != nil {
			b.Fatal(err)
		}
	}
}
