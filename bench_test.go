// Package repro's top-level benchmarks regenerate each evaluation figure of
// the Butterfly paper at reduced scale — one benchmark per figure — plus an
// end-to-end pipeline benchmark. Full-scale regeneration (100 windows,
// H=2000/5000, both datasets) is the job of cmd/experiments; these
// benchmarks exist so `go test -bench` exercises every experiment path and
// reports its cost.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/experiment"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/pipeline"
	"repro/internal/rng"
)

// benchOpts shrinks a figure run to benchmark scale: one dataset, few
// windows, wide stride. The sweep structure (all settings, all variants) is
// preserved — only the per-setting window count shrinks.
func benchOpts() experiment.FigureOptions {
	return experiment.FigureOptions{
		WindowSize:    500,
		Windows:       4,
		Stride:        25,
		Seed:          1,
		Gamma:         2,
		DatasetFilter: "WebView1",
	}
}

func runFigure(b *testing.B, n int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		panels, err := experiment.Figure(n, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(panels) == 0 {
			b.Fatal("no panels")
		}
	}
}

// BenchmarkFig4Privacy regenerates the privacy/precision experiment
// (avg_prig vs δ, avg_pred vs ε; Fig. 4).
func BenchmarkFig4Privacy(b *testing.B) { runFigure(b, 4) }

// BenchmarkFig5OrderRatio regenerates the order/ratio preservation
// experiment (avg_ropp and avg_rrpp vs ε/δ; Fig. 5).
func BenchmarkFig5OrderRatio(b *testing.B) { runFigure(b, 5) }

// BenchmarkFig6Gamma regenerates the γ-tuning experiment (avg_ropp vs γ;
// Fig. 6).
func BenchmarkFig6Gamma(b *testing.B) { runFigure(b, 6) }

// BenchmarkFig7Hybrid regenerates the λ-tradeoff experiment (ropp/rrpp
// frontier; Fig. 7).
func BenchmarkFig7Hybrid(b *testing.B) { runFigure(b, 7) }

// BenchmarkFig8Overhead regenerates the efficiency experiment (per-window
// mining/Basic/Opt time vs C; Fig. 8).
func BenchmarkFig8Overhead(b *testing.B) {
	opts := benchOpts()
	opts.WindowSize = 1000 // Fig8 would otherwise bump the default to 5000
	for i := 0; i < b.N; i++ {
		panels, err := experiment.Fig8(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(panels) == 0 {
			b.Fatal("no panels")
		}
	}
}

// BenchmarkPipelinePush measures the steady-state per-record cost of the
// full stream pipeline (incremental mining + window bookkeeping).
func BenchmarkPipelinePush(b *testing.B) {
	stream, err := core.NewStream(core.StreamConfig{
		WindowSize: 2000,
		Params:     core.Params{Epsilon: 0.016, Delta: 0.4, MinSupport: 25, VulnSupport: 5},
		Scheme:     core.Hybrid{Lambda: 0.4},
		Seed:       1,
	})
	if err != nil {
		b.Fatal(err)
	}
	gen := data.WebViewLike(1)
	for i := 0; i < 2000; i++ {
		stream.Push(gen.Next())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream.Push(gen.Next())
	}
}

// benchWindow mines one dense synthetic window for the mining and
// publication micro-benchmarks.
func benchWindow(b *testing.B) (*itemset.Database, *mining.Result) {
	b.Helper()
	db := itemset.NewDatabase(data.WebViewLike(1).Generate(2000))
	res, err := mining.Eclat(db, 25)
	if err != nil {
		b.Fatal(err)
	}
	return db, res
}

// BenchmarkEclatSerial measures single-threaded Eclat over one window — the
// "before" of the sharded parallel miner.
func BenchmarkEclatSerial(b *testing.B) {
	db, _ := benchWindow(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mining.Eclat(db, 25); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEclatParallel8 measures Eclat with the prefix-class recursion
// sharded across 8 workers.
func BenchmarkEclatParallel8(b *testing.B) {
	db, _ := benchWindow(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mining.EclatParallel(db, 25, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPublish measures repeated sanitized releases of one mined window at
// the given perturbation parallelism. The republication cache is disabled so
// every iteration pays the full perturbation cost.
func benchPublish(b *testing.B, workers int) {
	_, res := benchWindow(b)
	pub, err := core.NewPublisher(
		core.Params{Epsilon: 0.016, Delta: 0.4, MinSupport: 25, VulnSupport: 5},
		core.Hybrid{Lambda: 0.4}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	pub.SetWorkers(workers)
	pub.SetRepublicationCache(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pub.Publish(res, 2000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublishSequential measures the historical one-stream perturbation
// path — the "before" of the chunked parallel publisher.
func BenchmarkPublishSequential(b *testing.B) { benchPublish(b, 1) }

// BenchmarkPublishChunked8 measures the chunked-RNG perturbation path with
// an 8-worker pool.
func BenchmarkPublishChunked8(b *testing.B) { benchPublish(b, 8) }

// benchEndToEnd streams 3000 synthetic records through the full publication
// pipeline (window 1000, publishing every 200 slides) at the given
// parallelism.
func benchEndToEnd(b *testing.B, workers int) {
	records := data.WebViewLike(1).Generate(3000)
	p, err := pipeline.New(pipeline.Config{
		WindowSize:   1000,
		Params:       core.Params{Epsilon: 0.016, Delta: 0.4, MinSupport: 25, VulnSupport: 5},
		Scheme:       core.Hybrid{Lambda: 0.4},
		Seed:         1,
		PublishEvery: 200,
		Workers:      workers,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		windows := 0
		if err := p.Run(records, func(pipeline.Window) error { windows++; return nil }); err != nil {
			b.Fatal(err)
		}
		if windows == 0 {
			b.Fatal("no windows published")
		}
	}
}

// BenchmarkEndToEndSerial measures the full mine→perturb→emit loop on the
// Workers=1 reference path.
func BenchmarkEndToEndSerial(b *testing.B) { benchEndToEnd(b, 1) }

// BenchmarkEndToEndWorkers8 measures the staged pipeline with 8 workers
// (overlapped stages + chunked perturbation).
func BenchmarkEndToEndWorkers8(b *testing.B) { benchEndToEnd(b, 8) }

// BenchmarkPipelinePublish measures one sanitized release of a full window
// (FEC partitioning, bias optimization, perturbation).
func BenchmarkPipelinePublish(b *testing.B) {
	stream, err := core.NewStream(core.StreamConfig{
		WindowSize: 2000,
		Params:     core.Params{Epsilon: 0.016, Delta: 0.4, MinSupport: 25, VulnSupport: 5},
		Scheme:     core.Hybrid{Lambda: 0.4},
		Seed:       1,
	})
	if err != nil {
		b.Fatal(err)
	}
	gen := data.WebViewLike(1)
	for i := 0; i < 2200; i++ {
		stream.Push(gen.Next())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stream.Publish(); err != nil {
			b.Fatal(err)
		}
	}
}
