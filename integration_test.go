package repro

import (
	"math"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/experiment"
	"repro/internal/itemset"
	"repro/internal/metrics"
	"repro/internal/mining"
	"repro/internal/mining/moment"
	"repro/internal/rng"
)

// The repository's headline integration test: stream → incremental mining →
// Butterfly publication → inference attack, asserting the paper's two hard
// guarantees on the way through.
//
//  1. Precision: avg_pred <= ε over every published window.
//  2. Privacy: the adversary's pooled squared relative error on every
//     lattice-derivable vulnerable pattern is >= δ (averaged over
//     independent perturbation runs).
func TestEndToEndGuarantees(t *testing.T) {
	params := core.Params{Epsilon: 0.05, Delta: 0.6, MinSupport: 15, VulnSupport: 4}
	if err := params.Validate(); err != nil {
		t.Fatal(err)
	}
	w, err := experiment.Precompute(experiment.Datasets()[0], 600, 12, 4,
		params.MinSupport, params.VulnSupport, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range experiment.Variants(2) {
		res, err := experiment.RunPrecomputed(w, params, v.Scheme, experiment.EvalOptions{
			Seed:         3,
			WithAttack:   true,
			PrivacySeeds: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.AvgPred > params.Epsilon {
			t.Errorf("%s: avg_pred %v exceeds ε %v", v.Name, res.AvgPred, params.Epsilon)
		}
		if res.PhvTotal == 0 {
			t.Fatalf("%s: no inferable vulnerable patterns — the privacy assertion is vacuous", v.Name)
		}
		if res.AvgPrig < params.Delta {
			t.Errorf("%s: avg_prig %v below δ %v over %d patterns",
				v.Name, res.AvgPrig, params.Delta, res.PhvTotal)
		}
	}
}

// The incremental miner, the per-window miners and the publisher must agree
// along a full pipeline run: everything Eclat finds is published, with the
// same membership, every window.
func TestPipelineMinersAgree(t *testing.T) {
	gen := data.WebViewLike(21)
	params := core.Params{Epsilon: 0.05, Delta: 0.5, MinSupport: 12, VulnSupport: 3}
	stream, err := core.NewStream(core.StreamConfig{
		WindowSize: 400, Params: params, Scheme: core.Basic{}, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 900; i++ {
		stream.Push(gen.Next())
		if !stream.Ready() || i%100 != 0 {
			continue
		}
		mined := stream.Mine()
		check, err := mining.Eclat(stream.Miner().Database(), params.MinSupport)
		if err != nil {
			t.Fatal(err)
		}
		if mined.Len() != check.Len() {
			t.Fatalf("record %d: incremental %d itemsets, Eclat %d", i, mined.Len(), check.Len())
		}
		out, err := stream.Publish()
		if err != nil {
			t.Fatal(err)
		}
		for _, fi := range check.Itemsets {
			if _, ok := out.Support(fi.Set); !ok {
				t.Fatalf("record %d: %v mined but not published", i, fi.Set)
			}
		}
	}
}

// Replaying the identical stream with the identical seeds must reproduce
// the identical published bytes — the reproducibility contract the
// experiments rely on.
func TestPipelineFullyDeterministic(t *testing.T) {
	run := func() []int {
		gen := data.POSLike(8)
		stream, err := core.NewStream(core.StreamConfig{
			WindowSize: 500,
			Params:     core.Params{Epsilon: 0.05, Delta: 0.5, MinSupport: 15, VulnSupport: 3},
			Scheme:     core.OrderPreserving{Gamma: 2},
			Seed:       8,
		})
		if err != nil {
			t.Fatal(err)
		}
		var vals []int
		for i := 0; i < 800; i++ {
			stream.Push(gen.Next())
			if stream.Ready() && i%150 == 0 {
				out, err := stream.Publish()
				if err != nil {
					t.Fatal(err)
				}
				for _, it := range out.Items {
					vals = append(vals, it.Support)
				}
			}
		}
		return vals
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("published value %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

// An attack on raw output finds exact breaches; the same attack run on
// Butterfly output must not recover them: over many windows, the fraction
// of breaches whose sanitized-output estimate rounds to the true value must
// be far below 1.
func TestAttackDefeatedEndToEnd(t *testing.T) {
	const (
		windowSize  = 600
		minSupport  = 12
		vulnSupport = 3
		windows     = 15
	)
	gen := data.WebViewLike(33)
	miner := moment.New(windowSize, minSupport)
	for i := 0; i < windowSize; i++ {
		miner.Push(gen.Next())
	}
	params := core.Params{Epsilon: 0.05, Delta: 0.8, MinSupport: minSupport, VulnSupport: vulnSupport}
	pub, err := core.NewPublisher(params, core.Basic{}, rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	opts := attack.Options{VulnSupport: vulnSupport}
	total, exact := 0, 0
	for w := 0; w < windows; w++ {
		for s := 0; s < 4; s++ {
			miner.Push(gen.Next())
		}
		res := miner.Frequent()
		clean := cleanView(res, windowSize)
		breaches := attack.IntraWindow(clean, opts)
		if len(breaches) == 0 {
			continue
		}
		out, err := pub.Publish(res, windowSize)
		if err != nil {
			t.Fatal(err)
		}
		est := attack.NewEstimator(sanView(out), attack.Options{VulnSupport: vulnSupport, SkipCompletion: true})
		for _, b := range breaches {
			guess, ok := est.EstimatePattern(b.I, b.J)
			if !ok {
				continue
			}
			total++
			if int(math.Round(guess)) == b.Support {
				exact++
			}
		}
	}
	if total < 10 {
		t.Fatalf("only %d breaches found; fixture too weak", total)
	}
	if frac := float64(exact) / float64(total); frac > 0.5 {
		t.Errorf("adversary still exact on %.0f%% of %d breaches", frac*100, total)
	}
}

// Utility metrics computed from a published window must round-trip through
// the same values the experiment harness reports.
func TestMetricsConsistentWithHarness(t *testing.T) {
	w, err := experiment.Precompute(experiment.Datasets()[0], 400, 3, 10, 12, 3, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	params := core.Params{Epsilon: 0.05, Delta: 0.5, MinSupport: 12, VulnSupport: 3}
	res, err := experiment.RunPrecomputed(w, params, core.Basic{}, experiment.EvalOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Recompute by hand with an identically-seeded publisher.
	pub, err := core.NewPublisher(params, core.Basic{}, rng.New(5^0x5bf0f5))
	if err != nil {
		t.Fatal(err)
	}
	var preds []float64
	for _, wd := range w.Data {
		out, err := pub.Publish(wd.Mined, w.WindowSize)
		if err != nil {
			t.Fatal(err)
		}
		pairs := make([]metrics.Pair, 0, wd.Mined.Len())
		for _, fi := range wd.Mined.Itemsets {
			san, _ := out.Support(fi.Set)
			pairs = append(pairs, metrics.Pair{True: fi.Support, Sanitized: san})
		}
		preds = append(preds, metrics.AvgPred(pairs))
	}
	if got := metrics.Mean(preds); math.Abs(got-res.AvgPred) > 1e-12 {
		t.Errorf("hand-computed avg_pred %v != harness %v", got, res.AvgPred)
	}
}

func cleanView(res *mining.Result, windowSize int) *attack.View {
	sets := make([]itemset.Itemset, res.Len())
	sups := make([]int, res.Len())
	for i, fi := range res.Itemsets {
		sets[i] = fi.Set
		sups[i] = fi.Support
	}
	return attack.NewView(windowSize, sets, sups)
}

func sanView(out *core.Output) *attack.View {
	sets := make([]itemset.Itemset, out.Len())
	sups := make([]int, out.Len())
	for i, it := range out.Items {
		sets[i] = it.Set
		sups[i] = it.Support
	}
	return attack.NewView(out.WindowSize, sets, sups)
}
